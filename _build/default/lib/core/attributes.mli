(** The hidden attributes of robot [R'] relative to the reference robot [R].

    Following the paper's convention (Section 1.1), the analysis is carried
    out in the frame of [R]: [R] has unit speed, unit time, a correct compass
    and positive chirality, and [R'] carries the four unknowns. The robots
    themselves never read these values — they exist only in the model and
    the simulator. *)

type chirality = Same | Opposite
(** Whether [R'] agrees with [R] on the +y direction (the paper's
    [χ = ±1]). *)

type t = private {
  v : float;  (** speed of [R'], > 0 (paper: [v]) *)
  tau : float;  (** time unit of [R'], > 0 (paper: [τ]) *)
  phi : float;  (** compass rotation of [R'], normalised to [\[0, 2π)] *)
  chi : chirality;
}

val make : ?v:float -> ?tau:float -> ?phi:float -> ?chi:chirality -> unit -> t
(** Defaults are the reference values [(1, 1, 0, Same)]. Raises
    [Invalid_argument] on non-positive [v] or [tau]; [phi] is normalised. *)

val reference : t
(** Attributes of a robot identical to [R]. *)

val chi_float : t -> float
(** [+1.] or [−1.] — the paper's χ as a scalar. *)

val is_reference : ?tol:float -> t -> bool
(** All four attributes equal to the reference values (tolerantly). *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
