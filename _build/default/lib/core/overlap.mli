(** The overlap machinery behind Theorem 3 (paper Lemmas 9 and 10,
    Figure 3).

    With asymmetric clocks, [R]'s phases run on the global timeline while
    [R']'s are stretched by [τ < 1]. The rendezvous proof shows that [R]'s
    active phases eventually overlap [R']'s inactive phases for longer than
    a whole [SearchAll(n)], at which point [R] finds the *stationary* [R']
    exactly as in the search problem. The two geometric ways the phases can
    interleave are the two cases of Figure 3. *)

type window = { lo : float; hi : float }
(** A closed interval of admissible [τ] values. *)

val lemma9_window : k:int -> a:int -> window
(** Lemma 9: for [k ≥ 2(a+1)], if [τ ∈ \[k/((k+1+a)·2^(a+1)),
    (3/2)·k/((k+1+a)·2^(a+1))\]] then [R]'s [k]-th active phase overlaps
    [R']'s [(k+1+a)]-th inactive phase by [τ·A(k+1+a) − A(k)]
    (Figure 3a). *)

val lemma10_window : k:int -> a:int -> window
(** Lemma 10: for [k ≥ 2(a+1)], if [τ ∈ \[(2/3)·k/((k+a)·2^a),
    k/((k+1+a)·2^a)\]] then [R]'s [(k−1)]-st active phase overlaps [R']'s
    [(k+a)]-th inactive phase by [I(k) − τ·I(k+a)] (Figure 3b). *)

val lemma9_overlap : tau:float -> k:int -> a:int -> float
(** The claimed Figure-3a overlap amount [τ·A(k+1+a) − A(k)]. *)

val lemma10_overlap : tau:float -> k:int -> a:int -> float
(** The claimed Figure-3b overlap amount [I(k) − τ·I(k+a)]. *)

val exact_overlap : tau:float -> active_round:int -> inactive_round:int -> float
(** Ground truth, by direct interval intersection: the length of
    [\[A(k), I(k+1)) ∩ \[τ·I(m), τ·A(m))] for [R]'s active round [k] and
    [R']'s inactive round [m]. The test suite checks the lemma formulas
    against this. *)

val max_overlap_with_inactive : tau:float -> active_round:int -> float * int
(** Largest {!exact_overlap} of [R]'s given active phase over all inactive
    rounds [m] of [R'], and the maximising [m]. Used to reproduce the
    Figure 3 growth series. *)
