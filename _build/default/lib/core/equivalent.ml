open Rvu_geom

let t_matrix a = Mat2.sub Mat2.identity (Frame.trajectory_matrix a)

let mu (a : Attributes.t) =
  sqrt (Float.max 0.0 ((a.v *. a.v) -. (2.0 *. a.v *. cos a.phi) +. 1.0))

let factor (a : Attributes.t) =
  let m = mu a in
  if m <= 1e-12 then None
  else
    let v = a.v and phi = a.phi and chi = Attributes.chi_float a in
    let q =
      Mat2.scale (1.0 /. m)
        (Mat2.make
           ~a:(1.0 -. (v *. cos phi))
           ~b:(v *. sin phi)
           ~c:(-.v *. sin phi)
           ~d:(1.0 -. (v *. cos phi)))
    in
    let r =
      Mat2.make ~a:m
        ~b:(-.(1.0 -. chi) *. v *. sin phi /. m)
        ~c:0.0
        ~d:(((chi *. v *. v) -. ((1.0 +. chi) *. v *. cos phi) +. 1.0) /. m)
    in
    Some (q, r)

let t_prime a = Option.map snd (factor a)

let projection_gain a ~dhat =
  Vec2.norm (Mat2.apply (Mat2.transpose (t_matrix a)) dhat)

let worst_case_gain a =
  (* Smallest singular value of the 2×2 matrix T∘. *)
  let m = t_matrix a in
  let g = Mat2.mul (Mat2.transpose m) m in
  (* Eigenvalues of the symmetric Gram matrix. *)
  let tr = g.Mat2.a +. g.Mat2.d in
  let dt = Mat2.det g in
  let disc = sqrt (Float.max 0.0 ((tr *. tr /. 4.0) -. dt)) in
  sqrt (Float.max 0.0 ((tr /. 2.0) -. disc))

let worst_direction a =
  (* Eigenvector of the symmetric G = T∘·T∘ᵀ for its smaller eigenvalue:
     the unit d̂ minimising |T∘ᵀd̂|² = d̂ᵀGd̂. *)
  let m = t_matrix a in
  let g = Mat2.mul m (Mat2.transpose m) in
  let tr = g.Mat2.a +. g.Mat2.d in
  let disc = sqrt (Float.max 0.0 ((tr *. tr /. 4.0) -. Mat2.det g)) in
  let lambda_min = (tr /. 2.0) -. disc in
  (* (G − λI)·v = 0: rows are parallel; take the better-conditioned one. *)
  let r1 = Vec2.make (g.Mat2.a -. lambda_min) g.Mat2.b in
  let r2 = Vec2.make g.Mat2.c (g.Mat2.d -. lambda_min) in
  let row = if Vec2.norm r1 >= Vec2.norm r2 then r1 else r2 in
  if Vec2.norm row <= 1e-12 then Vec2.make 1.0 0.0 (* G = λI: isotropic *)
  else Vec2.normalize (Vec2.perp row)

let equivalent_instance (a : Attributes.t) ~d ~r ~dhat =
  let gain =
    match a.chi with Attributes.Same -> mu a | Attributes.Opposite -> projection_gain a ~dhat
  in
  if gain <= 1e-12 then None else Some (d /. gain, r /. gain)
