type chirality = Same | Opposite

type t = { v : float; tau : float; phi : float; chi : chirality }

let make ?(v = 1.0) ?(tau = 1.0) ?(phi = 0.0) ?(chi = Same) () =
  if v <= 0.0 then invalid_arg "Attributes.make: speed must be positive";
  if tau <= 0.0 then invalid_arg "Attributes.make: time unit must be positive";
  { v; tau; phi = Rvu_geom.Angle.normalize phi; chi }

let reference = make ()
let chi_float a = match a.chi with Same -> 1.0 | Opposite -> -1.0

let is_reference ?tol a =
  let eq = Rvu_numerics.Floats.equal ?tol in
  eq a.v 1.0 && eq a.tau 1.0 && eq a.phi 0.0 && a.chi = Same

let equal ?tol a b =
  let eq = Rvu_numerics.Floats.equal ?tol in
  eq a.v b.v && eq a.tau b.tau && eq a.phi b.phi && a.chi = b.chi

let pp ppf a =
  Format.fprintf ppf "{v=%g; tau=%g; phi=%g; chi=%s}" a.v a.tau a.phi
    (match a.chi with Same -> "+1" | Opposite -> "-1")
