(** The paper's headline: one algorithm, no knowledge of which attribute
    differs.

    Algorithm 7 solves rendezvous whenever rendezvous is solvable at all
    (Theorem 4) — the robots need not know whether it is their clocks,
    speeds or compasses that differ. This module packages that story: the
    single program both robots should run, plus the best applicable analytic
    guarantee for a given (hidden) attribute vector. *)

type guarantee = {
  verdict : Feasibility.verdict;
  round : int option;
      (** An Algorithm 7 round by whose end rendezvous is guaranteed
          ([Some 0] = visible at start); [None] when infeasible. *)
  time : float option;
      (** Global-time guarantee corresponding to [round]; [None] when
          infeasible. *)
}

val program : unit -> Rvu_trajectory.Program.t
(** The universal program — Algorithm 7, which each robot runs in its own
    frame and clock. *)

val guarantee : Attributes.t -> d:float -> r:float -> guarantee
(** Analytic guarantee for Algorithm 7 on the given instance:

    - [τ ≠ 1]: Theorem 3 (the overlap argument), via {!Bounds.asymmetric_round}.
    - [τ = 1], feasible: the Section 3 equivalent-search reduction applied
      to Algorithm 7's own schedule — the induced trajectory performs a
      scaled [Search(n_eff)] during round [n_eff] of the schedule, where
      [n_eff] is the discovery round of the rescaled instance
      [(d/g, r/g)] with [g] the worst-case gain of {!Equivalent}.
    - infeasible: no guarantee ([round = time = None]). *)
