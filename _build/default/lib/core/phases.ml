let pi1 = Rvu_numerics.Floats.pi +. 1.0
let pow2 = Rvu_search.Procedures.pow2

let s n =
  if n < 1 then invalid_arg "Phases.s: n < 1";
  12.0 *. pi1 *. float_of_int n *. pow2 n

let inactive_start n =
  if n < 1 then invalid_arg "Phases.inactive_start: n < 1";
  24.0 *. pi1 *. ((float_of_int ((2 * n) - 4) *. pow2 n) +. 4.0)

let active_start n =
  if n < 1 then invalid_arg "Phases.active_start: n < 1";
  24.0 *. pi1 *. ((float_of_int ((3 * n) - 4) *. pow2 n) +. 4.0)

let round_end n = inactive_start (n + 1)
let time_to_complete_rounds n = if n = 0 then 0.0 else round_end n
let round_duration n = 4.0 *. s n

type phase = Inactive | Active

let phase_at t =
  if t < 0.0 then None
  else begin
    let rec find n =
      if t < round_end n then n else find (n + 1)
    in
    let n = find 1 in
    Some (n, if t < active_start n then Inactive else Active)
  end
