(** The equivalent-search reduction (paper Section 3, Lemma 5 and
    Definition 1).

    A rendezvous trajectory [S] solves rendezvous iff the *induced search
    trajectory* [S∘(t) = S(t) − S'(t) = T∘·S(t)] solves search against the
    displacement [d], where [T∘ = I − v·R(φ)·F(χ)]. Lemma 5 factors
    [T∘ = Φ·T'∘] with [Φ] a rotation, and since rotations preserve
    distances, the analysis may use the upper-triangular [T'∘]:

    {v matrix}
      T'∘ = [ μ   −(1−χ)·v·sinφ/μ ]
            [ 0   (χv² − (1+χ)v·cosφ + 1)/μ ]
    {v matrix}

    with [μ = √(v² − 2v·cosφ + 1)]. For [χ = +1] this is [μ·I] (pure
    scaling, Lemma 6); for [χ = −1] the second row degenerates to
    [\[0, (1−v²)/μ\]] and the projection argument of Lemma 7 applies. *)

val t_matrix : Attributes.t -> Rvu_geom.Mat2.t
(** [T∘ = I − v·R(φ)·F(χ)]. *)

val mu : Attributes.t -> float
(** [μ = √(v² − 2v·cosφ + 1)] — the distance between [1] and [v·e^{iφ}] in
    the complex plane; zero exactly when [v = 1, φ = 0]. *)

val factor : Attributes.t -> (Rvu_geom.Mat2.t * Rvu_geom.Mat2.t) option
(** Lemma 5's closed-form factorisation [(Φ, T'∘)]. [None] when [μ = 0]
    (the matrix [T∘] is then either zero — identical robots — or the
    rank-one [χ = −1, v = 1, φ = 0] case where the paper's closed form
    divides by μ). The test suite checks [Φ·T'∘ = T∘], [Φ] orthogonal with
    determinant 1, against {!Rvu_geom.Mat2.qr}. *)

val t_prime : Attributes.t -> Rvu_geom.Mat2.t option
(** Just the upper-triangular factor of {!factor}. *)

val projection_gain : Attributes.t -> dhat:Rvu_geom.Vec2.t -> float
(** [|T∘ᵀ·d̂|] for a unit vector [d̂] — the factor by which the χ = −1
    argument of Lemma 7 rescales the instance: the equivalent search instance
    has [d' = d/|T∘ᵀd̂|] and [r' = r/|T∘ᵀd̂|]. Zero when [d̂] is orthogonal
    to the range of [T∘] (the adversarial direction of the infeasible
    cases). *)

val worst_case_gain : Attributes.t -> float
(** [min over unit d̂ of |T∘ᵀ·d̂|], the smallest singular value of [T∘]. For
    [χ = −1] this is the paper's worst case [(1 − v²)/μ ≥ (1 − v)]
    evaluated at the worst [φ]; used by the Theorem 2 bound. *)

val worst_direction : Attributes.t -> Rvu_geom.Vec2.t
(** The unit displacement direction achieving {!worst_case_gain} — the
    hardest bearing for the Lemma 7 argument (an eigenvector of [T∘·T∘ᵀ]
    for its smallest eigenvalue). For infeasible mirror twins this is the
    mirror-axis direction with gain 0. Experiment E3 places the robots
    along it. *)

val equivalent_instance :
  Attributes.t -> d:float -> r:float -> dhat:Rvu_geom.Vec2.t -> (float * float) option
(** The scaled search instance [(d', r')] seen by the induced trajectory for
    a displacement of length [d] in direction [d̂]: [χ = +1] gives
    [(d/μ, r/μ)]; [χ = −1] gives [(d/g, r/g)] with [g = projection_gain].
    [None] when the gain vanishes (no equivalent finite instance —
    infeasible direction). *)
