(** Rendezvous time bounds: Theorem 2 (symmetric clocks) and
    Lemmas 11–13 / Theorem 3 (asymmetric clocks).

    All times are global ([R]-frame) time; all logs are base 2. *)

val symmetric_clock_time : Attributes.t -> d:float -> r:float -> float option
(** Theorem 2 (the robots' clocks assumed equal; [tau] is ignored):
    [χ = +1] → [6(π+1)·log(d²/μr)·d²/(μr)];
    [χ = −1] → [6(π+1)·log(d²/(1−v)r)·d²/((1−v)r)].
    [None] when the case is infeasible ([μ = 0], resp. [v = 1]) — matching
    the feasibility frontier of Theorem 2. Requires [d, r > 0].

    Inherits the paper's Lemma 3 looseness (see
    {!Rvu_search.Bounds.search_time}); use {!symmetric_clock_time_safe} for
    a bound the simulation always satisfies. *)

val symmetric_clock_time_safe : Attributes.t -> d:float -> r:float -> float option
(** Theorem 2 with the repaired Lemma 3 constant [12(π+1)] — the version the
    test suite asserts against. *)

val tau_decomposition : float -> int * float
(** Lemma 13's parameterisation of [τ ∈ (0, 1)]: the unique [(a, t)] with
    [τ = t·2⁻ᵃ], [a ≥ 0] integer, [t ∈ \[1/2, 1)] ([t = 1/2] exactly when τ
    is a power of two). Raises [Invalid_argument] outside [(0, 1)]. *)

val lemma11_round : tau:float -> n:int -> int option
(** Lemma 11's exact round: the first [k] with
    [24(π+1)(3(a+1)·2ᵏ − 4) ≥ S(n)], i.e.
    [k = ⌈log((n·2ⁿ/2 + 4) / (3(a+1)))⌉], maxed with the window-validity
    threshold [k₀ = ⌈4(a+1)t/(3−4t)⌉]; valid in the [t ∈ [1/2, 2/3]]
    regime, [None] outside it. Requires [n ≥ 1]. *)

val lemma12_round : tau:float -> n:int -> int option
(** Lemma 12's exact round via the Lambert W function: with
    [k₀ = ⌈(a+1)·t/(1−t)⌉] and [γ = k₀/(k₀+1+a)],

    [k* = 2 + ⌈aγ/(1−γ) + W(ln2·n·2ⁿ/(4(1−γ)) · 2^((−(a−2)γ−2)/(1−γ)))/ln2⌉].

    maxed with the window-validity threshold [k₀]. Valid in the
    [t ∈ (2/3, 1)] regime; [None] otherwise. This is the form the paper
    states before simplifying [W(x) ≈ ln x − ln ln x]; the test suite
    checks it stays below the simplified {!round_bound}. *)

val round_bound : tau:float -> n:int -> int
(** Lemma 13: if [R] would find a stationary [R'] on round [n] of
    Algorithm 7, the robots rendezvous by the end of round

    - [max(8(a+1), n + ⌈log(n/(a+1))⌉)] when [t ∈ \[1/2, 2/3\]],
    - [max(⌈(a+1)·t/(1−t)⌉, n + ⌈log(n/(1−t))⌉)] when [t ∈ (2/3, 1)].

    Requires [τ ∈ (0,1)] and [n ≥ 1]. *)

val searcher_round : Attributes.t -> d:float -> r:float -> int
(** The Algorithm 7 round on which the slower-clocked robot would find the
    other standing still — the [n] fed to {!round_bound}. When [τ < 1] the
    searcher is [R] and [n = discovery_round d r]; when [τ > 1] the roles
    swap and the instance is rescaled into [R']'s distance unit [v·τ].
    Returns [0] when [d ≤ r]. Requires [τ ≠ 1]. *)

val asymmetric_round : Attributes.t -> d:float -> r:float -> int
(** Composition of {!searcher_round} and {!round_bound}: a round by whose
    end Algorithm 7 guarantees rendezvous. [0] when [d ≤ r]. *)

val asymmetric_time : Attributes.t -> d:float -> r:float -> float
(** Theorem 3's finite rendezvous-time bound: the global time at which the
    searcher completes the {!asymmetric_round} rounds (clock-unit corrected
    when the searcher is [R']). *)

val offline_optimum : Attributes.t -> d:float -> r:float -> float
(** The omniscient lower bound: robots that know everything walk straight
    at each other and meet when the gap closes to [r], at time
    [(d − r)/(1 + v)] ([0.] when [d ≤ r]). The competitive-ratio experiment
    (E10) divides measured rendezvous times by this — the price of not
    knowing the attributes. *)
