(** Paper Algorithm 7 — the universal rendezvous algorithm for robots with
    (possibly) asymmetric clocks.

    Round [n]: wait at the initial position for [2·S(n)] local time, then
    run [SearchAll(n)] followed by [SearchAllRev(n)]. The program runs
    forever; rendezvous is an event detected by the simulator, exactly as in
    the paper's model where robots stop only by seeing each other. *)

val round_program : int -> Rvu_trajectory.Program.t
(** The [n]-th round ([n >= 1]): inactive wait + forward and reversed
    sweeps. Lazy; round [n] holds Θ(4ⁿ) segments. *)

val program : unit -> Rvu_trajectory.Program.t
(** The full infinite program, rounds [1, 2, 3, …]. *)

val prefix : rounds:int -> Rvu_trajectory.Program.t
(** Finite prefix with the given number of rounds — for measuring durations
    against the Lemma 8 closed forms. *)
