(** Lemma 4: how robot [R'] realises the common trajectory.

    If both robots execute the trajectory [S], then in the global frame [R]
    follows [S(t)] while [R'] follows [d + (v·τ)·R(φ)·F(χ)·S(t/τ)]: its
    distance unit is [v·τ] (speed × local time unit), its axes are rotated by
    [φ] and possibly reflected, it starts at displacement [d], and its local
    clock runs at rate [1/τ]. With [τ = 1] this is exactly the paper's
    [S'(t) = v·R(φ)·F(χ)·S(t)]. *)

val clocked :
  Attributes.t -> displacement:Rvu_geom.Vec2.t -> Rvu_trajectory.Realize.clocked
(** Realisation parameters for [R'] starting at [displacement] from [R]. *)

val reference_clocked : Rvu_trajectory.Realize.clocked
(** Realisation parameters for [R] (identity frame, unit clock). *)

val trajectory_matrix : Attributes.t -> Rvu_geom.Mat2.t
(** The Lemma 4 linear map [v·R(φ)·F(χ)] (symmetric-clock picture, no [τ]
    factor): the matrix relating [S'] to [S]. *)
