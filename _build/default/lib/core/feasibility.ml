type reason = Different_clocks | Different_speeds | Rotated_same_chirality
type verdict = Feasible of reason | Infeasible

let classify ?tol (a : Attributes.t) =
  let eq = Rvu_numerics.Floats.equal ?tol in
  if not (eq a.tau 1.0) then Feasible Different_clocks
  else if not (eq a.v 1.0) then Feasible Different_speeds
  else if a.chi = Attributes.Same && not (eq (Rvu_geom.Angle.normalize a.phi) 0.0)
  then Feasible Rotated_same_chirality
  else Infeasible

let is_feasible ?tol a = classify ?tol a <> Infeasible

let adversarial_direction ?tol (a : Attributes.t) =
  match classify ?tol a with
  | Feasible _ -> None
  | Infeasible -> begin
      match a.chi with
      | Attributes.Same -> Some (Rvu_geom.Vec2.make 1.0 0.0)
      | Attributes.Opposite ->
          (* v·R(φ)·F with v = 1 is the reflection about the axis at angle
             φ/2; T∘ = I − reflection has range along the axis normal, so the
             axis direction itself is never approached. *)
          Some (Rvu_geom.Vec2.make (cos (a.phi /. 2.0)) (sin (a.phi /. 2.0)))
    end
