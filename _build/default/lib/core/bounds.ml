let pi1 = Rvu_numerics.Floats.pi +. 1.0
let log2 = Rvu_numerics.Floats.log2

let check_dr ~ctx ~d ~r =
  if d <= 0.0 || r <= 0.0 then invalid_arg (ctx ^ ": d, r > 0 required")

let scaled_search_time ~factor ratio = factor *. pi1 *. log2 ratio *. ratio

let symmetric_clock_time_factor ~factor (a : Attributes.t) ~d ~r =
  check_dr ~ctx:"Bounds.symmetric_clock_time" ~d ~r;
  match a.chi with
  | Attributes.Same ->
      let mu = Equivalent.mu a in
      if mu <= 1e-12 then None
      else Some (scaled_search_time ~factor (d *. d /. (mu *. r)))
  | Attributes.Opposite ->
      if Rvu_numerics.Floats.equal a.v 1.0 then None
      else begin
        let gap = Float.abs (1.0 -. a.v) in
        Some (scaled_search_time ~factor (d *. d /. (gap *. r)))
      end

let symmetric_clock_time a ~d ~r = symmetric_clock_time_factor ~factor:6.0 a ~d ~r

let symmetric_clock_time_safe a ~d ~r =
  symmetric_clock_time_factor ~factor:12.0 a ~d ~r

let tau_decomposition tau =
  if tau <= 0.0 || tau >= 1.0 then
    invalid_arg "Bounds.tau_decomposition: tau outside (0, 1)";
  let neg_log = -.log2 tau in
  let rounded = Float.round neg_log in
  let is_pow2 =
    Float.abs (neg_log -. rounded) < 1e-12
    && Rvu_numerics.Floats.equal tau (Rvu_search.Procedures.pow2 (-(int_of_float rounded)))
  in
  if is_pow2 then (int_of_float rounded - 1, 0.5)
  else begin
    let a = int_of_float (floor neg_log) in
    (a, tau *. Rvu_search.Procedures.pow2 a)
  end

let lemma11_round ~tau ~n =
  if n < 1 then invalid_arg "Bounds.lemma11_round: n < 1";
  let a, t = tau_decomposition tau in
  if t > 2.0 /. 3.0 then None
  else begin
    (* Overlap >= S(n) when 3(a+1)·2^k − 4 >= (n/2)·2^n, per the Lemma 11
       derivation; the smallest such k is the ceiling below. *)
    let af = float_of_int (a + 1) and nf = float_of_int n in
    let arg =
      ((nf /. 2.0 *. Rvu_search.Procedures.pow2 n) +. 4.0) /. (3.0 *. af)
    in
    (* Lemma 9's window must hold at the answer: k >= k0 = 4(a+1)t/(3-4t). *)
    let k0 = int_of_float (ceil (4.0 *. af *. t /. (3.0 -. (4.0 *. t)))) in
    Some (Stdlib.max k0 (int_of_float (ceil (log2 arg))))
  end

let lemma12_round ~tau ~n =
  if n < 1 then invalid_arg "Bounds.lemma12_round: n < 1";
  let a, t = tau_decomposition tau in
  if t <= 2.0 /. 3.0 then None
  else begin
    let af = float_of_int a and nf = float_of_int n in
    let k0 = ceil ((af +. 1.0) *. t /. (1.0 -. t)) in
    (* With the real-valued k0 = (a+1)t/(1−t) of the paper's derivation,
       γ = k0/(k0+1+a) simplifies to exactly t. *)
    let gamma = t in
    let ln2 = log 2.0 in
    let w_arg =
      ln2 *. nf /. (4.0 *. (1.0 -. gamma))
      *. Rvu_search.Procedures.pow2 n
      *. Float.exp
           (ln2 /. (1.0 -. gamma) *. ((-.(af -. 2.0) *. gamma) -. 2.0))
    in
    match Rvu_numerics.Lambert_w.w0 w_arg with
    | Error _ -> None
    | Ok w ->
        let raw =
          2
          + int_of_float
              (ceil ((af *. gamma /. (1.0 -. gamma)) +. (w /. ln2)))
        in
        (* Lemma 10's window must hold at the answer: k >= k0. *)
        Some (Stdlib.max (int_of_float k0) raw)
  end

let round_bound ~tau ~n =
  if n < 1 then invalid_arg "Bounds.round_bound: n < 1";
  let a, t = tau_decomposition tau in
  let af = float_of_int (a + 1) and nf = float_of_int n in
  if t <= 2.0 /. 3.0 then
    Stdlib.max (8 * (a + 1)) (n + int_of_float (ceil (log2 (nf /. af))))
  else
    Stdlib.max
      (int_of_float (ceil (af *. t /. (1.0 -. t))))
      (n + int_of_float (ceil (log2 (nf /. (1.0 -. t)))))

let searcher_round (a : Attributes.t) ~d ~r =
  check_dr ~ctx:"Bounds.searcher_round" ~d ~r;
  if Rvu_numerics.Floats.equal a.tau 1.0 then
    invalid_arg "Bounds.searcher_round: tau = 1 (use symmetric_clock_time)";
  if d <= r then 0
  else if a.tau < 1.0 then Rvu_search.Predict.discovery_round ~d ~r
  else begin
    (* R' is the slower-clocked searcher; rescale the instance into its own
       distance unit v·τ. *)
    let unit = a.v *. a.tau in
    Rvu_search.Predict.discovery_round ~d:(d /. unit) ~r:(r /. unit)
  end

let effective_tau (a : Attributes.t) = if a.tau < 1.0 then a.tau else 1.0 /. a.tau

let asymmetric_round (a : Attributes.t) ~d ~r =
  match searcher_round a ~d ~r with
  | 0 -> 0
  | n -> round_bound ~tau:(effective_tau a) ~n

let offline_optimum (a : Attributes.t) ~d ~r =
  check_dr ~ctx:"Bounds.offline_optimum" ~d ~r;
  Float.max 0.0 ((d -. r) /. (1.0 +. a.v))

let asymmetric_time (a : Attributes.t) ~d ~r =
  let k = asymmetric_round a ~d ~r in
  let local = Phases.time_to_complete_rounds k in
  (* When R' is the searcher its rounds run in its own clock units: global
     time is stretched by τ. *)
  if a.tau < 1.0 then local else a.tau *. local
