(** Parameter sweep construction for the experiment harness. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [n] evenly spaced points including both endpoints. Requires [n >= 2]
    unless [lo = hi] (then a singleton is fine with any [n >= 1]). *)

val logspace : lo:float -> hi:float -> n:int -> float list
(** [n] log-evenly spaced points including both endpoints. Requires
    [0 < lo <= hi]. *)

val powers_of_two : first:int -> last:int -> float list
(** [2^first … 2^last] inclusive. *)

val grid : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product in row-major order. *)
