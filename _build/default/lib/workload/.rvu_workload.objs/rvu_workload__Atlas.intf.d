lib/workload/atlas.mli: Rvu_core
