lib/workload/atlas.ml: Attributes Feasibility Printf Rvu_core Rvu_numerics
