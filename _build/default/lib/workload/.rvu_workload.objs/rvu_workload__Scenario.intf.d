lib/workload/scenario.mli: Rng Rvu_core Rvu_geom
