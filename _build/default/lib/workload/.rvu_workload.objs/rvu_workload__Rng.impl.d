lib/workload/rng.ml: Float Int64 Rvu_numerics
