lib/workload/sweep.mli:
