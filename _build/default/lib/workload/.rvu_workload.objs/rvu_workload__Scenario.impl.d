lib/workload/scenario.ml: Attributes Float List Rng Rvu_core Rvu_geom Rvu_numerics
