lib/workload/rng.mli:
