type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = create ~seed:(next_int64 g)

let float g =
  (* Top 53 bits → [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform g ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. (float g *. (hi -. lo))

let log_uniform g ~lo ~hi =
  if not (0.0 < lo && lo <= hi) then invalid_arg "Rng.log_uniform: need 0 < lo <= hi";
  Float.exp (uniform g ~lo:(log lo) ~hi:(log hi))

let angle g = uniform g ~lo:0.0 ~hi:Rvu_numerics.Floats.two_pi

let bool g = Int64.logand (next_int64 g) 1L = 1L

let int g ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection-free modulo is fine for the small bounds used here. *)
  Int64.to_int (Int64.rem (Int64.logand (next_int64 g) Int64.max_int) (Int64.of_int bound))
