(** Deterministic pseudo-random numbers (SplitMix64).

    Experiments must be reproducible run-to-run and machine-to-machine, so
    all randomness flows through this self-contained generator rather than
    [Stdlib.Random] (whose algorithm changed across OCaml versions).
    SplitMix64 passes BigCrush, is splittable, and is four lines long. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** An independent generator derived from (and advancing) the parent —
    lets parallel experiment arms draw without interleaving effects. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 random bits. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val log_uniform : t -> lo:float -> hi:float -> float
(** Log-uniform in [\[lo, hi)] — the natural distribution for the paper's
    scale-free distances and radii. Requires [0 < lo <= hi]. *)

val angle : t -> float
(** Uniform in [\[0, 2π)]. *)

val bool : t -> bool

val int : t -> bound:int -> int
(** Uniform in [\[0, bound)]. Requires [bound > 0]. *)
