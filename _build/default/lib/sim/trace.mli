(** Position sampling for examples and visual output.

    Walks a realised trajectory once and records positions at the requested
    times — the data behind the ASCII "plots" in the examples. *)

type sample = { time : float; position : Rvu_geom.Vec2.t }

val sample :
  Rvu_trajectory.Realize.clocked ->
  Rvu_trajectory.Program.t ->
  times:float list ->
  sample list
(** [sample clocked program ~times] evaluates the realised trajectory at
    each time (the list is sorted internally; one forward pass). Times
    beyond a finite program's end report the final position. *)

val pair_distances :
  Rvu_core.Attributes.t ->
  displacement:Rvu_geom.Vec2.t ->
  Rvu_trajectory.Program.t ->
  times:float list ->
  (float * float) list
(** Inter-robot distance at each requested time for the standard two-robot
    setup — [(time, distance)] rows ready for a table. *)
