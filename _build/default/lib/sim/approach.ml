open Rvu_geom
open Rvu_trajectory

let segment_pair_lipschitz s1 s2 = Timed.speed s1 +. Timed.speed s2

let distance_at s1 s2 t = Vec2.dist (Timed.position s1 t) (Timed.position s2 t)

(* A timed Wait or Line segment's position is affine in global time:
   p(t) = base + slope·t on the segment's span. *)
let affine_of (s : Timed.t) =
  match s.Timed.shape with
  | Segment.Wait { pos; _ } -> Some (pos, Vec2.zero)
  | Segment.Line { src; dst } ->
      let slope = Vec2.scale (1.0 /. s.Timed.dur) (Vec2.sub dst src) in
      let base = Vec2.sub src (Vec2.scale s.Timed.t0 slope) in
      Some (base, slope)
  | Segment.Arc _ -> None

(* Earliest t in [lo, hi] with |p0 + w·t| <= r, p(t) the relative position. *)
let first_within_affine ~r ~lo ~hi (base, slope) =
  let at t = Vec2.add base (Vec2.scale t slope) in
  if Vec2.norm (at lo) <= r then Some lo
  else begin
    (* |p|² − r² = |w|²·t² + 2(p₀·w)·t + |p₀|² − r² *)
    let a = Vec2.norm2 slope in
    let b = 2.0 *. Vec2.dot base slope in
    let c = Vec2.norm2 base -. (r *. r) in
    if a = 0.0 then None (* constant distance, already checked at lo *)
    else begin
      let disc = (b *. b) -. (4.0 *. a *. c) in
      if disc < 0.0 then None
      else begin
        let sd = sqrt disc in
        let t1 = (-.b -. sd) /. (2.0 *. a) in
        (* t1 is the earlier root; distance is below r on [t1, t2]. *)
        if t1 >= lo && t1 <= hi then Some t1 else None
      end
    end
  end

let first_within ?(closed_forms = true) ~r ~resolution ~lo ~hi s1 s2 =
  if r <= 0.0 then invalid_arg "Approach.first_within: r <= 0";
  if lo > hi then invalid_arg "Approach.first_within: empty interval";
  let affine =
    if closed_forms then
      match (affine_of s1, affine_of s2) with
      | Some (b1, w1), Some (b2, w2) -> Some (Vec2.sub b1 b2, Vec2.sub w1 w2)
      | _ -> None
    else None
  in
  match affine with
  | Some rel -> first_within_affine ~r ~lo ~hi rel
  | None -> begin
      let f t = distance_at s1 s2 t -. r in
      match
        Rvu_numerics.Lipschitz.first_below
          ~lipschitz:(segment_pair_lipschitz s1 s2)
          ~resolution ~f ~lo ~hi ()
      with
      | Rvu_numerics.Lipschitz.First_below t -> Some t
      | Rvu_numerics.Lipschitz.Stays_above -> None
    end

let min_distance_lower_bound ~resolution ~lo ~hi s1 s2 =
  let f t = distance_at s1 s2 t in
  match (affine_of s1, affine_of s2) with
  | Some (b1, w1), Some (b2, w2) ->
      (* Exact: distance of the origin from the relative affine path. *)
      let base = Vec2.sub b1 b2 and slope = Vec2.sub w1 w2 in
      let at t = Vec2.add base (Vec2.scale t slope) in
      Dist.point_segment Vec2.zero (at lo) (at hi)
  | _ ->
      Rvu_numerics.Lipschitz.min_lower_bound
        ~lipschitz:(segment_pair_lipschitz s1 s2)
        ~resolution ~f ~lo ~hi ()
