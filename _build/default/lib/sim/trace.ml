open Rvu_geom
open Rvu_trajectory

type sample = { time : float; position : Vec2.t }

let sample clocked program ~times =
  let sorted = List.sort Float.compare times in
  let stream = Realize.realize clocked program in
  (* One forward pass: advance the stream only as far as the largest time. *)
  let rec go acc last_pos (s : Timed.t Seq.t) times =
    match times with
    | [] -> List.rev acc
    | t :: rest_times -> begin
        match s () with
        | Seq.Nil -> go ({ time = t; position = last_pos } :: acc) last_pos s rest_times
        | Seq.Cons (seg, rest) ->
            if t < seg.Timed.t0 then
              (* Gap before this segment (t before program start): hold. *)
              go ({ time = t; position = last_pos } :: acc) last_pos s rest_times
            else if t <= Timed.t1 seg then
              let p = Timed.position seg t in
              go ({ time = t; position = p } :: acc) last_pos s rest_times
            else go acc (Timed.position seg (Timed.t1 seg)) rest times
      end
  in
  let start_pos =
    Conformal.apply clocked.Realize.frame Vec2.zero
  in
  go [] start_pos stream sorted

let pair_distances attributes ~displacement program ~times =
  let s_r = sample Realize.identity program ~times in
  let s_r' =
    sample (Rvu_core.Frame.clocked attributes ~displacement) program ~times
  in
  List.map2
    (fun a b ->
      if a.time <> b.time then invalid_arg "Trace.pair_distances: time skew";
      (a.time, Vec2.dist a.position b.position))
    s_r s_r'
