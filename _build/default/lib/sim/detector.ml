open Rvu_trajectory

type outcome = Hit of float | Horizon of float | Stream_end of float

type stats = { intervals : int; min_distance : float }

(* Shared merged-timeline walker. Calls [f ~lo ~hi a b] on each maximal
   interval where both robots occupy a single segment; [f] may short-circuit
   by returning [Some _]. [finish] receives how the walk ended. *)
let walk ~horizon s1 s2 ~f ~finish =
  let rec advance (s : Timed.t Seq.t) t =
    match s () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (seg, rest) as node ->
        if Timed.t1 seg <= t then advance rest t else node
  in
  let rec scan now n1 n2 =
    match (n1, n2) with
    | Seq.Nil, _ | _, Seq.Nil -> finish (Stream_end now)
    | Seq.Cons (a, rest1), Seq.Cons (b, rest2) ->
        if now >= horizon then finish (Horizon horizon)
        else begin
          let lo = Float.max now (Float.max a.Timed.t0 b.Timed.t0) in
          let hi = Float.min horizon (Float.min (Timed.t1 a) (Timed.t1 b)) in
          if lo >= horizon then finish (Horizon horizon)
          else if lo >= hi then
            if Timed.t1 a <= Timed.t1 b then scan now (advance rest1 now) n2
            else scan now n1 (advance rest2 now)
          else begin
            match f ~lo ~hi a b with
            | Some result -> result
            | None ->
                if hi >= horizon then finish (Horizon horizon)
                else if Timed.t1 a <= Timed.t1 b then
                  scan hi (advance rest1 hi) n2
                else scan hi n1 (advance rest2 hi)
          end
        end
  in
  scan 0.0 (s1 ()) (s2 ())

let first_meeting ?(closed_forms = true) ?(resolution = 1e-9)
    ?(horizon = Float.infinity) ~r s1 s2 =
  if r <= 0.0 then invalid_arg "Detector.first_meeting: r <= 0";
  let intervals = ref 0 in
  let min_distance = ref Float.infinity in
  let f ~lo ~hi a b =
    incr intervals;
    let d0 = Approach.distance_at a b lo in
    if d0 < !min_distance then min_distance := d0;
    Option.map
      (fun t -> Hit t)
      (Approach.first_within ~closed_forms ~r ~resolution ~lo ~hi a b)
  in
  let outcome = walk ~horizon s1 s2 ~f ~finish:Fun.id in
  (outcome, { intervals = !intervals; min_distance = !min_distance })

let fold_intervals ?(horizon = Float.infinity) s1 s2 ~init ~f =
  let acc = ref init in
  let g ~lo ~hi a b =
    acc := f !acc ~lo ~hi a b;
    None
  in
  let (_ : outcome) = walk ~horizon s1 s2 ~f:g ~finish:Fun.id in
  !acc
