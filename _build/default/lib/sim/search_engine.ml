open Rvu_geom
open Rvu_trajectory

type outcome = Found of float | Horizon of float | Program_end of float

type stats = { segments : int }

let min_distance_to (seg : Timed.t) target =
  match seg.Timed.shape with
  | Segment.Wait { pos; _ } -> Vec2.dist pos target
  | Segment.Line { src; dst } -> Dist.point_segment target src dst
  | Segment.Arc { center; radius; from; sweep } ->
      Dist.point_arc target ~center ~radius ~from ~sweep

(* The segment is known to reach within r of the target; find the first time
   it does. The distance-to-target along one segment changes direction at
   most twice, so a bisection on "has been within r" via the sign function
   distance(t) − r needs the first crossing: scan with the certified
   Lipschitz search (speed of the segment is its Lipschitz constant). *)
let first_contact ~time_tol ~r (seg : Timed.t) target =
  let f t = Vec2.dist (Timed.position seg t) target -. r in
  let lo = seg.Timed.t0 and hi = Timed.t1 seg in
  match
    Rvu_numerics.Lipschitz.first_below ~lipschitz:(Timed.speed seg)
      ~resolution:(Float.max time_tol (1e-3 *. seg.Timed.dur))
      ~f ~lo ~hi ()
  with
  | Rvu_numerics.Lipschitz.First_below t -> t
  | Rvu_numerics.Lipschitz.Stays_above ->
      (* Cannot happen: the caller checked the closed-form minimum. Guard
         against tolerance mismatches by polishing from the endpoint side. *)
      Rvu_numerics.Brent.bisect_first ~tol:time_tol ~f ~lo ~hi ()

let run ?(horizon = Float.infinity) ?(time_tol = 1e-12)
    ?(clocked = Realize.identity) ~program ~target ~r () =
  if r <= 0.0 then invalid_arg "Search_engine.run: r <= 0";
  let segments = ref 0 in
  let stream = Realize.realize clocked program in
  let rec go last_end (s : Timed.t Seq.t) =
    match s () with
    | Seq.Nil -> Program_end last_end
    | Seq.Cons (seg, rest) ->
        if seg.Timed.t0 >= horizon then Horizon horizon
        else begin
          incr segments;
          if min_distance_to seg target <= r then
            Found (first_contact ~time_tol ~r seg target)
          else if Timed.t1 seg >= horizon then Horizon horizon
          else go (Timed.t1 seg) rest
        end
  in
  let outcome = go 0.0 stream in
  (outcome, { segments = !segments })
