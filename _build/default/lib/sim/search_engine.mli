(** The single-robot search engine (paper Section 2).

    One robot executes a program from the origin; a stationary target sits at
    a fixed position. Because the target does not move, the minimum distance
    over each trajectory segment has a closed form ({!Rvu_geom.Dist}), so
    detection here is exact: root-polishing is only used to localise the
    first-contact time inside a segment already known to reach the target. *)

type outcome =
  | Found of float  (** first time the target is within visibility *)
  | Horizon of float
  | Program_end of float

type stats = { segments : int }

val run :
  ?horizon:float ->
  ?time_tol:float ->
  ?clocked:Rvu_trajectory.Realize.clocked ->
  program:Rvu_trajectory.Program.t ->
  target:Rvu_geom.Vec2.t ->
  r:float ->
  unit ->
  outcome * stats
(** [run ~program ~target ~r ()] walks the realised trajectory until the
    target is first within [r]. [clocked] (default the reference frame)
    selects the realisation — the equivalent-search reduction of
    Definition 1 needs the μ-scaled frame here. [time_tol] (default
    [1e-12]) bounds the error of the reported contact time. Requires
    [r > 0]. *)
