(** Multi-robot gathering — an executable playground for the paper's
    open problem.

    Section 5 of the paper poses deterministic {e gathering} of many robots
    with unknown attributes as future work. This module provides the
    simulation side: [n] robots, each with its own hidden attribute vector
    and start position, all executing the same program; gathering is the
    first instant the swarm's diameter (maximum pairwise distance) drops to
    the visibility radius [r].

    The detector generalises the two-robot machinery: all realised streams
    are walked in lockstep over their merged timeline, and on each interval
    the swarm diameter — Lipschitz with constant twice the fastest current
    segment speed — is searched for its first crossing of [r] with the same
    certified branch-and-prune used pairwise. *)

type robot = {
  attributes : Rvu_core.Attributes.t;
  start : Rvu_geom.Vec2.t;
}
(** One swarm member. The reference robot is
    [{ attributes = Attributes.reference; start = Vec2.zero }]. *)

type outcome =
  | Gathered of float  (** first time the swarm diameter is ≤ r *)
  | Horizon of float
  | Stream_end of float

type stats = {
  intervals : int;
  min_diameter : float;
      (** smallest swarm diameter sampled at interval starts (diagnostic) *)
}

val diameter_at :
  Rvu_trajectory.Realize.clocked array ->
  Rvu_trajectory.Program.t ->
  float ->
  float
(** Swarm diameter at one global time, by direct (linear-cost) trajectory
    evaluation — for traces and tests. *)

val run :
  ?resolution:float ->
  ?horizon:float ->
  ?program:Rvu_trajectory.Program.t ->
  r:float ->
  robot list ->
  outcome * stats
(** [run ~r robots] simulates the swarm (default program: the universal
    Algorithm 7). Requires at least two robots, [r > 0] and pairwise
    distinct starts. As with two robots, supply a [horizon]: no theorem
    guarantees gathering, and the paper leaves its feasibility open. *)
