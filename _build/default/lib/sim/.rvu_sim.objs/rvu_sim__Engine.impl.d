lib/sim/engine.ml: Approach Attributes Detector Float Frame Rvu_core Rvu_geom Rvu_trajectory Universal Vec2
