lib/sim/approach.ml: Dist Rvu_geom Rvu_numerics Rvu_trajectory Segment Timed Vec2
