lib/sim/search_engine.ml: Dist Float Realize Rvu_geom Rvu_numerics Rvu_trajectory Segment Seq Timed Vec2
