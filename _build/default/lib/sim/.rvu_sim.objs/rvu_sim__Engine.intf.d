lib/sim/engine.mli: Detector Rvu_core Rvu_geom Rvu_trajectory
