lib/sim/detector.mli: Rvu_trajectory Seq
