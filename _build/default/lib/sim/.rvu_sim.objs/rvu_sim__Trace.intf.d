lib/sim/trace.mli: Rvu_core Rvu_geom Rvu_trajectory
