lib/sim/trace.ml: Conformal Float List Realize Rvu_core Rvu_geom Rvu_trajectory Seq Timed Vec2
