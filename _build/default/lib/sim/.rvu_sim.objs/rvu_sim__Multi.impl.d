lib/sim/multi.ml: Array Float List Realize Rvu_core Rvu_geom Rvu_numerics Rvu_trajectory Seq Timed Vec2
