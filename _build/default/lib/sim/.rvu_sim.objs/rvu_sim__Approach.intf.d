lib/sim/approach.mli: Rvu_trajectory
