lib/sim/search_engine.mli: Rvu_geom Rvu_trajectory
