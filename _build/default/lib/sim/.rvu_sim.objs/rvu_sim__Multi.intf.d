lib/sim/multi.mli: Rvu_core Rvu_geom Rvu_trajectory
