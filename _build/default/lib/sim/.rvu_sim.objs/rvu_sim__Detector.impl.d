lib/sim/detector.ml: Approach Float Fun Option Rvu_trajectory Seq Timed
