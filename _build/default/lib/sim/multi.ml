open Rvu_geom
open Rvu_trajectory

type robot = { attributes : Rvu_core.Attributes.t; start : Vec2.t }

type outcome = Gathered of float | Horizon of float | Stream_end of float

type stats = { intervals : int; min_diameter : float }

let clocked_of { attributes; start } =
  Rvu_core.Frame.clocked attributes ~displacement:start

let diameter_of_positions positions =
  let n = Array.length positions in
  let worst = ref 0.0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let d = Vec2.dist positions.(i) positions.(j) in
      if d > !worst then worst := d
    done
  done;
  !worst

let diameter_at clocked program t =
  diameter_of_positions
    (Array.map (fun c -> Realize.position c program t) clocked)

(* One walker per robot over its realised stream. *)
type walker = { mutable current : Timed.t option; mutable rest : Timed.t Seq.t }

let advance_walker w t =
  (* Ensure [current] covers time [t] (or is the stream's last segment). *)
  let rec go () =
    match w.current with
    | Some seg when Timed.t1 seg > t -> true
    | _ -> begin
        match w.rest () with
        | Seq.Nil -> false
        | Seq.Cons (seg, rest) ->
            w.current <- Some seg;
            w.rest <- rest;
            go ()
      end
  in
  go ()

let run ?(resolution = 1e-6) ?(horizon = Float.infinity) ?program ~r robots =
  if r <= 0.0 then invalid_arg "Multi.run: r <= 0";
  if List.length robots < 2 then invalid_arg "Multi.run: need at least two robots";
  let starts = List.map (fun rb -> rb.start) robots in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Vec2.dist a b = 0.0 then
            invalid_arg "Multi.run: robots must start at distinct positions")
        starts)
    starts;
  let program =
    match program with Some p -> p | None -> Rvu_core.Universal.program ()
  in
  let walkers =
    robots
    |> List.map (fun rb ->
           { current = None; rest = Realize.realize (clocked_of rb) program })
    |> Array.of_list
  in
  let intervals = ref 0 in
  let min_diameter = ref Float.infinity in
  let segment_positions t =
    Array.map
      (fun w ->
        match w.current with
        | Some seg -> Timed.position seg t
        | None -> assert false)
      walkers
  in
  let rec scan now =
    if now >= horizon then Horizon horizon
    else if not (Array.for_all (fun w -> advance_walker w now) walkers) then
      Stream_end now
    else begin
      (* All walkers cover [now]; the interval ends at the earliest segment
         end (or the horizon). *)
      let hi =
        Array.fold_left
          (fun acc w ->
            match w.current with
            | Some seg -> Float.min acc (Timed.t1 seg)
            | None -> acc)
          horizon walkers
      in
      incr intervals;
      let f t = diameter_of_positions (segment_positions t) -. r in
      let d0 = f now +. r in
      if d0 < !min_diameter then min_diameter := d0;
      let lipschitz =
        2.0
        *. Array.fold_left
             (fun acc w ->
               match w.current with
               | Some seg -> Float.max acc (Timed.speed seg)
               | None -> acc)
             0.0 walkers
      in
      match
        Rvu_numerics.Lipschitz.first_below ~lipschitz ~resolution ~f ~lo:now
          ~hi ()
      with
      | Rvu_numerics.Lipschitz.First_below t -> Gathered t
      | Rvu_numerics.Lipschitz.Stays_above ->
          if hi >= horizon then Horizon horizon else scan hi
    end
  in
  let outcome = scan 0.0 in
  (outcome, { intervals = !intervals; min_diameter = !min_diameter })
