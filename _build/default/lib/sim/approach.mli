(** First time two uniformly-traversed timed segments come within range.

    This is the detector's inner kernel. Waits and lines have positions
    affine in time, so their relative distance is a quadratic whose first
    crossing of [r] is solved exactly. As soon as an arc is involved the
    distance is trigonometric; there the certified Lipschitz search is used
    with constant [speed₁ + speed₂] (the relative speed bound), so a
    crossing can only be missed if the distance dips below [r] by less than
    the stated resolution. *)

val segment_pair_lipschitz : Rvu_trajectory.Timed.t -> Rvu_trajectory.Timed.t -> float
(** Sum of the two segments' traversal speeds — a Lipschitz constant for
    the inter-robot distance on their common time span. *)

val distance_at : Rvu_trajectory.Timed.t -> Rvu_trajectory.Timed.t -> float -> float
(** Inter-robot distance at a global time (positions clamp outside the
    segments' spans). *)

val first_within :
  ?closed_forms:bool ->
  r:float ->
  resolution:float ->
  lo:float ->
  hi:float ->
  Rvu_trajectory.Timed.t ->
  Rvu_trajectory.Timed.t ->
  float option
(** [first_within ~r ~resolution ~lo ~hi s1 s2] is the earliest
    [t ∈ [lo, hi]] at which the robots are within distance [r], or [None]
    if they certifiedly stay outside throughout. [\[lo, hi\]] must lie inside
    both segments' time spans. Requires [r > 0], [resolution > 0],
    [lo <= hi].

    [closed_forms] (default [true]) enables the exact quadratic solution for
    affine segment pairs; disabling it forces the Lipschitz search
    everywhere — correctness must not change, only speed (the ablation
    benchmark checks exactly this). *)

val min_distance_lower_bound :
  resolution:float ->
  lo:float ->
  hi:float ->
  Rvu_trajectory.Timed.t ->
  Rvu_trajectory.Timed.t ->
  float
(** Certified lower bound on the minimum inter-robot distance over
    [\[lo, hi\]] — the tool the infeasibility experiment (E5) uses to prove
    separation. *)
