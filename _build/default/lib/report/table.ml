type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

type row = Cells of string list | Rule

type t = { columns : column list; mutable rows : row list (* reversed *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> Stdlib.max w (String.length (List.nth cells i)))
          (String.length col.header) rows)
      t.columns
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i cell ->
        let col = List.nth t.columns i and w = List.nth widths i in
        Buffer.add_string buf ("| " ^ pad col.align w cell ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  line (List.map (fun c -> c.header) t.columns);
  rule ();
  List.iter (function Rule -> rule () | Cells cells -> line cells) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let headers t = List.map (fun c -> c.header) t.columns

let rows t =
  List.filter_map
    (function Rule -> None | Cells cells -> Some cells)
    (List.rev t.rows)

let fstr x = Printf.sprintf "%.4g" x
let fstr_precise x = Printf.sprintf "%.10g" x
let istr = string_of_int
