(** SVG rendering of trajectories — real pictures with zero dependencies.

    The sealed toolchain has no plotting stack, but trajectories are made of
    line segments and circular arcs, which map 1:1 onto SVG path commands
    ([L] and [A]). This module draws realised trajectories (and point
    markers) into a standalone [.svg] file; the examples and the CLI use it
    to produce figures of the search annuli, both robots' paths and the
    meeting point.

    Coordinates: the plane's y axis points up, SVG's down; the renderer
    flips y and computes the viewBox from the data with a margin. *)

type shape =
  | Path of { points : path_piece list; color : string; width : float }
      (** A connected trajectory; pieces must be contiguous. *)
  | Disc of { center : float * float; radius : float; color : string }
      (** Filled marker (robot start, meeting point…). *)
  | Ring of { center : float * float; radius : float; color : string }
      (** Unfilled circle (visibility radius…). *)

and path_piece =
  | Move of (float * float)  (** start point (first piece only) *)
  | Line_to of (float * float)
  | Arc_to of {
      radius : float;
      large : bool;  (** more than half a turn *)
      ccw : bool;  (** counter-clockwise in plane coordinates *)
      stop : (float * float);
    }

val of_timed :
  ?color:string -> ?width:float -> Rvu_trajectory.Timed.t list -> shape
(** Convert a realised trajectory prefix into one drawable path. Full
    circles are split into two half-turn arcs (SVG cannot draw a closed arc
    to the same endpoint). Waits contribute nothing visible. *)

val render : ?size:int -> shape list -> string
(** A standalone SVG document. [size] is the longer edge in pixels
    (default 800). *)

val write : path:string -> ?size:int -> shape list -> unit
(** [render] to a file. *)
