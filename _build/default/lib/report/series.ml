let bar_chart ?(width = 60) ?(log_scale = true) ~title points =
  let scale v = if log_scale then log (1.0 +. Float.max 0.0 v) else Float.max 0.0 v in
  let top =
    List.fold_left (fun acc (_, v) -> Float.max acc (scale v)) 0.0 points
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 points
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, v) ->
      let bar_len =
        if top <= 0.0 then 0
        else int_of_float (Float.round (scale v /. top *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s %.6g\n" label_width label
           (String.make bar_len '#') v))
    points;
  Buffer.contents buf

let xy ?(x_header = "x") ?y_headers rows =
  let y_count = match rows with [] -> 0 | (_, ys) :: _ -> List.length ys in
  let headers =
    match y_headers with
    | Some hs ->
        if List.length hs <> y_count then invalid_arg "Series.xy: header count mismatch";
        hs
    | None -> List.init y_count (fun i -> Printf.sprintf "y%d" (i + 1))
  in
  let t =
    Table.create
      ~columns:(List.map Table.column (x_header :: headers))
  in
  List.iter
    (fun (x, ys) ->
      if List.length ys <> y_count then invalid_arg "Series.xy: ragged rows";
      Table.add_row t (Table.fstr x :: List.map Table.fstr ys))
    rows;
  Table.render t
