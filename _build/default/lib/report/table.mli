(** Aligned ASCII tables — the container has no plotting stack, so every
    experiment reports paper-shaped rows through this module. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column
(** Default alignment [Right] (numeric convention). *)

type t

val create : columns:column list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count does not match the column
    count. *)

val add_rule : t -> unit
(** Horizontal separator row. *)

val render : t -> string
(** The fully aligned table, with a header row and outer rules. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val headers : t -> string list
(** Column headers, for CSV export. *)

val rows : t -> string list list
(** Data rows in insertion order (rules omitted), for CSV export. *)

(** {2 Cell formatting helpers} *)

val fstr : float -> string
(** Compact float formatting: [%.4g]. *)

val fstr_precise : float -> string
(** [%.10g], for the exact-match columns of E6. *)

val istr : int -> string
