lib/report/timeline.ml: Buffer Bytes Float List Printf Stdlib String
