lib/report/svg.mli: Rvu_trajectory
