lib/report/csv.mli:
