lib/report/series.ml: Buffer Float List Printf Stdlib String Table
