lib/report/series.mli:
