lib/report/timeline.mli:
