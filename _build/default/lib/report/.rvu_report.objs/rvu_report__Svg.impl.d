lib/report/svg.ml: Buffer Float Fun List Printf Rvu_geom Rvu_numerics Rvu_trajectory Segment Stdlib Timed
