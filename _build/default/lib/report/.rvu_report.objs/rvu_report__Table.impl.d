lib/report/table.ml: Buffer List Printf Stdlib String
