lib/report/table.mli:
