type lane = { name : string; intervals : (float * float * char) list }

let render ?(width = 100) ?(warp = `Sqrt) ~t_max lanes =
  if t_max <= 0.0 then invalid_arg "Timeline.render: t_max <= 0";
  if width < 10 then invalid_arg "Timeline.render: width < 10";
  let to_axis t =
    let f =
      match warp with
      | `Linear -> t /. t_max
      | `Sqrt -> sqrt (Float.max 0.0 t /. t_max)
    in
    int_of_float (Float.round (f *. float_of_int (width - 1)))
  in
  let name_width =
    List.fold_left (fun acc l -> Stdlib.max acc (String.length l.name)) 0 lanes
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun lane ->
      let cells = Bytes.make width '.' in
      List.iter
        (fun (a, b, glyph) ->
          if b > 0.0 && a < t_max then begin
            let i = to_axis (Float.max 0.0 a)
            and j = to_axis (Float.min t_max b) in
            for k = i to Stdlib.min j (width - 1) do
              Bytes.set cells k glyph
            done
          end)
        lane.intervals;
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s|\n" name_width lane.name
           (Bytes.to_string cells)))
    lanes;
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  0%s%.4g%s\n" name_width ""
       (String.make (Stdlib.max 1 (width - 12)) ' ')
       t_max
       (match warp with `Sqrt -> " (sqrt axis)" | `Linear -> ""));
  Buffer.contents buf
