let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row cells = String.concat "," (List.map escape cells)

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (row header);
      output_char oc '\n';
      List.iter
        (fun cells ->
          output_string oc (row cells);
          output_char oc '\n')
        rows)
