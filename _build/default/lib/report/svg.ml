open Rvu_trajectory

type shape =
  | Path of { points : path_piece list; color : string; width : float }
  | Disc of { center : float * float; radius : float; color : string }
  | Ring of { center : float * float; radius : float; color : string }

and path_piece =
  | Move of (float * float)
  | Line_to of (float * float)
  | Arc_to of {
      radius : float;
      large : bool;
      ccw : bool;
      stop : (float * float);
    }

let xy (v : Rvu_geom.Vec2.t) = (v.Rvu_geom.Vec2.x, v.Rvu_geom.Vec2.y)

let arc_pieces ~center ~radius ~from ~sweep =
  (* SVG cannot express more than a full turn in one command and is
     ambiguous at exactly half a turn, so cut into sub-arcs of at most
     ~100 degrees. *)
  let chunk = Rvu_numerics.Floats.pi /. 1.8 in
  let n = Stdlib.max 1 (int_of_float (ceil (Float.abs sweep /. chunk))) in
  List.init n (fun i ->
      let theta = from +. (sweep *. float_of_int (i + 1) /. float_of_int n) in
      Arc_to
        {
          radius;
          large = false;
          ccw = sweep >= 0.0;
          stop = xy (Rvu_geom.Vec2.add center (Rvu_geom.Vec2.of_polar ~radius ~angle:theta));
        })

let of_timed ?(color = "#1f77b4") ?(width = 0.0) segs =
  let pieces =
    List.concat_map
      (fun (seg : Timed.t) ->
        match seg.Timed.shape with
        | Segment.Wait _ -> []
        | Segment.Line { src; dst } -> [ Move (xy src); Line_to (xy dst) ]
        | Segment.Arc { center; radius; from; sweep } ->
            Move (xy (Segment.start_pos seg.Timed.shape))
            :: arc_pieces ~center ~radius ~from ~sweep)
      segs
  in
  (* Collapse redundant Moves: keep a Move only when it actually jumps. *)
  let collapsed, _ =
    List.fold_left
      (fun (acc, cursor) piece ->
        match piece with
        | Move p -> begin
            match cursor with
            | Some q when Rvu_numerics.Floats.equal ~tol:1e-9 (fst p) (fst q)
                          && Rvu_numerics.Floats.equal ~tol:1e-9 (snd p) (snd q)
              ->
                (acc, cursor)
            | _ -> (Move p :: acc, Some p)
          end
        | Line_to p -> (Line_to p :: acc, Some p)
        | Arc_to a -> (Arc_to a :: acc, Some a.stop))
      ([], None) pieces
  in
  Path { points = List.rev collapsed; color; width }

let shape_bounds shape =
  let pts =
    match shape with
    | Path { points; _ } ->
        List.concat_map
          (function
            | Move p | Line_to p -> [ p ]
            | Arc_to { stop = x, y; radius; _ } ->
                (* conservative: the arc stays within radius of its stop *)
                [ (x -. radius, y -. radius); (x +. radius, y +. radius) ])
          points
    | Disc { center = x, y; radius; _ } | Ring { center = x, y; radius; _ } ->
        [ (x -. radius, y -. radius); (x +. radius, y +. radius) ]
  in
  pts

let render ?(size = 800) shapes =
  if shapes = [] then invalid_arg "Svg.render: nothing to draw";
  let pts = List.concat_map shape_bounds shapes in
  let xs = List.map fst pts and ys = List.map snd pts in
  let fold f = function [] -> 0.0 | x :: rest -> List.fold_left f x rest in
  let x0 = fold Float.min xs and x1 = fold Float.max xs in
  let y0 = fold Float.min ys and y1 = fold Float.max ys in
  let w = Float.max 1e-6 (x1 -. x0) and h = Float.max 1e-6 (y1 -. y0) in
  let margin = 0.05 *. Float.max w h in
  let vb_w = w +. (2.0 *. margin) and vb_h = h +. (2.0 *. margin) in
  let stroke_width = Float.max vb_w vb_h /. 400.0 in
  (* Flip the y axis: plane y-up, SVG y-down. *)
  let fx x = x -. x0 +. margin in
  let fy y = y1 -. y +. margin in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let px, py =
    if vb_w >= vb_h then (size, int_of_float (float_of_int size *. vb_h /. vb_w))
    else (int_of_float (float_of_int size *. vb_w /. vb_h), size)
  in
  pr
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %.6g %.6g\">\n"
    px py vb_w vb_h;
  pr "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n";
  List.iter
    (fun shape ->
      match shape with
      | Path { points; color; width } ->
          let d = Buffer.create 256 in
          List.iter
            (fun piece ->
              match piece with
              | Move (x, y) ->
                  Buffer.add_string d (Printf.sprintf "M %.6g %.6g " (fx x) (fy y))
              | Line_to (x, y) ->
                  Buffer.add_string d (Printf.sprintf "L %.6g %.6g " (fx x) (fy y))
              | Arc_to { radius; large; ccw; stop = x, y } ->
                  (* Orientation reverses under the y flip: plane-ccw arcs
                     take SVG sweep-flag 0. *)
                  Buffer.add_string d
                    (Printf.sprintf "A %.6g %.6g 0 %d %d %.6g %.6g" radius
                       radius
                       (if large then 1 else 0)
                       (if ccw then 0 else 1)
                       (fx x) (fy y)))
            points;
          pr
            "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.6g\" \
             stroke-linecap=\"round\"/>\n"
            (Buffer.contents d) color
            (if width > 0.0 then width else stroke_width)
      | Disc { center = x, y; radius; color } ->
          pr "<circle cx=\"%.6g\" cy=\"%.6g\" r=\"%.6g\" fill=\"%s\"/>\n" (fx x)
            (fy y) radius color
      | Ring { center = x, y; radius; color } ->
          pr
            "<circle cx=\"%.6g\" cy=\"%.6g\" r=\"%.6g\" fill=\"none\" \
             stroke=\"%s\" stroke-width=\"%.6g\" stroke-dasharray=\"%.6g\"/>\n"
            (fx x) (fy y) radius color (stroke_width /. 1.5)
            (3.0 *. stroke_width))
    shapes;
  pr "</svg>\n";
  Buffer.contents buf

let write ~path ?size shapes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?size shapes))
