(** Text rendering of numeric series — the repository's stand-in for the
    figures of a paper: an aligned x/y listing plus a log-scale bar chart
    that makes growth shapes visible in a terminal. *)

val bar_chart :
  ?width:int ->
  ?log_scale:bool ->
  title:string ->
  (string * float) list ->
  string
(** One bar per labelled value. [log_scale] (default [true]) draws bar
    lengths proportional to [log(1 + value)] — the paper's quantities span
    many decades. Zero and negative values render as empty bars. Default
    [width] 60 characters for the largest bar. *)

val xy :
  ?x_header:string -> ?y_headers:string list -> (float * float list) list -> string
(** Multi-column series listing: each row is [x] followed by its [y]
    values. Header defaults: ["x"], ["y1", "y2", …]. *)
