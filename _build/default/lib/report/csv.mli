(** Minimal CSV writing (RFC 4180 quoting) for machine-readable experiment
    output alongside the ASCII tables. *)

val escape : string -> string
(** Quote a field iff it contains a comma, quote or newline. *)

val row : string list -> string
(** One CSV line (no trailing newline). *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a whole file, header first. Overwrites. *)
