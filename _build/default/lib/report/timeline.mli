(** ASCII interval timelines — reproduces the schematic structure of the
    paper's Figures 1–3 (phase layouts and overlaps) in a terminal.

    Intervals are drawn on a shared horizontal axis; a square-root time warp
    is available because Algorithm 7's rounds grow geometrically and would
    otherwise collapse all early rounds into one character. *)

type lane = { name : string; intervals : (float * float * char) list }
(** Each interval is [(start, stop, glyph)]; the glyph fills the span. *)

val render :
  ?width:int -> ?warp:[ `Linear | `Sqrt ] -> t_max:float -> lane list -> string
(** Draw all lanes against a common [0 … t_max] axis (default [width] 100
    columns, default [warp] [`Sqrt]). Intervals are clipped to the axis;
    later intervals overwrite earlier ones where they overlap. *)
