(** Paper Algorithm 4 — the universal search trajectory — together with its
    bounded and reversed variants (paper Algorithms 5 and 6).

    Algorithm 4 runs [Search(1); Search(2); …] forever (the robot stops only
    by *seeing* the target, which is the simulator's job to detect).
    [SearchAll(n)] is its n-round prefix; [SearchAllRev(n)] the same rounds
    in descending order — the two building blocks of the asymmetric-clock
    rendezvous Algorithm 7. *)

val program : unit -> Rvu_trajectory.Program.t
(** The infinite search program, [Search(k)] for [k = 1, 2, 3, …]. *)

val search_all : int -> Rvu_trajectory.Program.t
(** Algorithm 5, [SearchAll(n)] = [Search(1) … Search(n)]. Requires
    [n >= 1]. *)

val search_all_rev : int -> Rvu_trajectory.Program.t
(** Algorithm 6, [SearchAllRev(n)] = [Search(n) … Search(1)]. Requires
    [n >= 1]. *)
