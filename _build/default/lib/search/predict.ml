let covers ~k ~j ~d ~r =
  j >= 0
  && j <= (2 * k) - 1
  && Procedures.inner_radius ~k ~j <= d
  && d <= Procedures.inner_radius ~k ~j:(j + 1)
  && Procedures.granularity ~k ~j <= r

let discovery_round ~d ~r =
  if d <= 0.0 || r <= 0.0 then invalid_arg "Predict.discovery_round: d, r > 0 required";
  if d <= r then 0
  else begin
    let covering k =
      let rec any j = j <= (2 * k) - 1 && (covers ~k ~j ~d ~r || any (j + 1)) in
      any 0
    in
    let rec go k =
      if k > 4096 then invalid_arg "Predict.discovery_round: no round <= 4096"
      else if covering k then k
      else go (k + 1)
    in
    go 1
  end

let paper_witness ~d ~r =
  let k = int_of_float (floor (Rvu_numerics.Floats.log2 (d *. d /. r))) in
  let j = int_of_float (floor (Rvu_numerics.Floats.log2 d)) + k in
  (k, j)

let ratio_lower_bound k = Procedures.pow2 (k + 1)
let ratio_lower_bound_minimal k = Procedures.pow2 k
