(** Analytic time bounds for search (paper Theorem 1).

    {b Reproduction note (discrepancy found by this test suite).} The paper's
    Lemma 3 claims that discovery in round [k] implies [d²/r ≥ 2^(k+1)]; its
    proof asserts [r ≤ ρ_{j,k}] for the discovering sub-round, but [r] may
    fall strictly between the granularity of round [k−1] (too coarse) and
    that of round [k] — e.g. [d = 2.059, r = 0.0575] is first covered in
    round 6 yet has [d²/r ≈ 73.7 < 2⁷ = 128]. The correct consequence of
    minimality ("round [k−1] failed") is [d²/r > 2^k], which weakens
    Theorem 1's constant from [6(π+1)] to [12(π+1)]. Simulated search times
    indeed exceed {!search_time} on such instances while always respecting
    {!search_time_safe}; experiment E1 reports both columns. *)

val search_time : d:float -> r:float -> float
(** Theorem 1 exactly as printed: [6(π+1)·log(d²/r)·(d²/r)] (logs base 2).
    Holds for most instances but can be violated by up to a factor of ~2 on
    the ratio band described above. Requires [d, r > 0]. *)

val search_time_safe : d:float -> r:float -> float
(** The repaired Theorem 1: [12(π+1)·log(d²/r)·(d²/r)] — follows from
    [d²/r > 2^k] (round [k−1] failed to cover) and Lemma 2's
    round-completion time. The test suite asserts every simulated search
    finishes within this bound. *)

val time_through_round : int -> float
(** Lemma 2, last item: completing rounds [1 … k] of Algorithm 4 takes
    [3(π+1)·k·2^(k+2)] — the bound used in the proof of Theorem 1. Equals
    {!Timing.search_all_time}. *)
