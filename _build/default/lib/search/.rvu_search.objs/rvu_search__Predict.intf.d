lib/search/predict.mli:
