lib/search/predict.ml: Procedures Rvu_numerics
