lib/search/timing.ml: Procedures Rvu_numerics
