lib/search/timing.mli:
