lib/search/procedures.ml: Float Program Rvu_geom Rvu_numerics Rvu_trajectory Segment Seq Vec2
