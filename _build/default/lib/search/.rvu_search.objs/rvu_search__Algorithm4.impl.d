lib/search/algorithm4.ml: List Procedures Program Rvu_trajectory
