lib/search/bounds.ml: Rvu_numerics Timing
