lib/search/bounds.mli:
