lib/search/procedures.mli: Rvu_trajectory
