lib/search/algorithm4.mli: Rvu_trajectory
