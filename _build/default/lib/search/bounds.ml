let scaled ~factor ~d ~r =
  if d <= 0.0 || r <= 0.0 then invalid_arg "Bounds.search_time: d, r > 0 required";
  let ratio = d *. d /. r in
  factor *. (Rvu_numerics.Floats.pi +. 1.0) *. Rvu_numerics.Floats.log2 ratio *. ratio

let search_time ~d ~r = scaled ~factor:6.0 ~d ~r
let search_time_safe ~d ~r = scaled ~factor:12.0 ~d ~r
let time_through_round k = Timing.search_all_time k
