open Rvu_trajectory

let program () = Program.rounds_from Procedures.search_round ~first:1

let search_all n =
  if n < 1 then invalid_arg "Algorithm4.search_all: n < 1";
  Program.concat_list (List.init n (fun i -> Procedures.search_round (i + 1)))

let search_all_rev n =
  if n < 1 then invalid_arg "Algorithm4.search_all_rev: n < 1";
  Program.rounds_desc Procedures.search_round ~from:n ~down_to:1
