(** Analytic predictions of when Algorithm 4 discovers a target
    (paper Lemmas 1 and 3).

    Conventions: the target sits at distance [d > 0] from the robot's start;
    the robot's visibility radius is [r > 0]. A sub-round [(k, j)] *covers*
    the pair [(d, r)] when the annulus [j] of round [k] contains the target's
    distance band and its granularity is within the visibility radius:
    [δ_{j,k} ≤ d ≤ δ_{j,k+1}] and [ρ_{j,k} ≤ r]. Coverage guarantees
    discovery (every annulus point is approached within ρ). *)

val covers : k:int -> j:int -> d:float -> r:float -> bool
(** The coverage test above. *)

val discovery_round : d:float -> r:float -> int
(** Smallest round [k ≥ 1] containing a covering sub-round [j ∈ \[0, 2k−1\]].
    Returns [0] when [d <= r] (the robots see each other at time zero).
    Requires [d > 0] and [r > 0]. *)

val paper_witness : d:float -> r:float -> int * int
(** Lemma 1's explicit witness [(k, j)] = [(⌊log(d²/r)⌋, ⌊log d⌋ + k)].
    Only meaningful when it satisfies the constraints (the test suite checks
    it does on the paper's parameter range and that [discovery_round] never
    exceeds its [k]). *)

val ratio_lower_bound : int -> float
(** Lemma 3 as printed: discovery in round [k] implies [d²/r ≥ 2^(k+1)];
    this returns that threshold. See the correction note in {!Bounds}: the
    claim can fail by a factor of two. *)

val ratio_lower_bound_minimal : int -> float
(** The repaired Lemma 3: minimality of the discovery round (round [k−1]
    failed to cover the instance) implies [d²/r > 2^k]. This is the bound
    the rest of the analysis can actually rely on. *)
