open Rvu_geom
open Rvu_trajectory

let pow2 k = Float.ldexp 1.0 k

let search_circle delta =
  if delta <= 0.0 then invalid_arg "Procedures.search_circle: radius <= 0";
  let anchor = Vec2.make delta 0.0 in
  Program.of_list
    [
      Segment.line ~src:Vec2.zero ~dst:anchor;
      Segment.full_circle ~center:Vec2.zero ~radius:delta ();
      Segment.line ~src:anchor ~dst:Vec2.zero;
    ]

let annulus_circle_count ~inner ~outer ~rho =
  Rvu_numerics.Floats.ceil_div_pos (outer -. inner) (2.0 *. rho) + 1

let search_annulus ~inner ~outer ~rho =
  if inner < 0.0 then invalid_arg "Procedures.search_annulus: inner < 0";
  if outer <= inner then invalid_arg "Procedures.search_annulus: outer <= inner";
  if rho <= 0.0 then invalid_arg "Procedures.search_annulus: rho <= 0";
  let count = annulus_circle_count ~inner ~outer ~rho in
  let circle i = search_circle (inner +. (2.0 *. float_of_int i *. rho)) in
  Seq.concat (Seq.init count circle)

let inner_radius ~k ~j = pow2 (-k + j)
let granularity ~k ~j = pow2 ((-3 * k) + (2 * j) - 1)

let round_wait_time k =
  3.0 *. (Rvu_numerics.Floats.pi +. 1.0) *. (pow2 k +. pow2 (-k))

let search_round k =
  if k < 1 then invalid_arg "Procedures.search_round: k < 1";
  let annulus j =
    search_annulus ~inner:(inner_radius ~k ~j)
      ~outer:(inner_radius ~k ~j:(j + 1))
      ~rho:(granularity ~k ~j)
  in
  let sweep = Seq.concat (Seq.init (2 * k) annulus) in
  let wait =
    Seq.return (Segment.wait ~at:Vec2.zero ~dur:(round_wait_time k))
  in
  Seq.append sweep wait
