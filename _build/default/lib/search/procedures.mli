(** The search procedures of paper Section 2, as trajectory generators.

    All procedures are anchored at the robot's local origin: each starts and
    ends there, so they chain freely. Radii and granularities follow the
    paper exactly:

    - Algorithm 1, [SearchCircle(δ)]: out along the +x axis to radius δ, a
      full counter-clockwise turn, back to the origin. Time [2(π+1)δ].
    - Algorithm 2, [SearchAnnulus(δ₁, δ₂, ρ)]: [SearchCircle(δ₁ + 2iρ)] for
      [i = 0 … ⌈(δ₂−δ₁)/2ρ⌉]; every point of the annulus comes within ρ of
      the robot.
    - Algorithm 3, [Search(k)]: annuli [j = 0 … 2k−1] with inner radius
      [2^(−k+j)], outer radius [2^(−k+j+1)] and granularity [2^(−3k+2j−1)],
      then a wait of [3(π+1)(2ᵏ + 2⁻ᵏ)] at the origin. *)

val pow2 : int -> float
(** [pow2 k] is [2ᵏ] as a float, exact for all in-range exponents (including
    negative ones — the paper's radii go down to [2^(−3k)]). *)

val search_circle : float -> Rvu_trajectory.Program.t
(** Algorithm 1. Requires a positive radius. Three segments. *)

val search_annulus :
  inner:float -> outer:float -> rho:float -> Rvu_trajectory.Program.t
(** Algorithm 2. Requires [0 <= inner < outer] and [rho > 0]; [inner] may be
    zero only in so far as the first circle then degenerates — the paper
    always calls it with positive inner radius. Lazy. *)

val annulus_circle_count : inner:float -> outer:float -> rho:float -> int
(** [⌈(outer − inner) / 2ρ⌉ + 1], the number of circles the annulus visits. *)

val search_round : int -> Rvu_trajectory.Program.t
(** Algorithm 3, [Search(k)]. Requires [k >= 1]. Lazy: the program has
    [3·2^(2k+1) + 6k − 5] segments and is generated on demand. *)

val round_wait_time : int -> float
(** The terminal wait of [Search(k)]: [3(π+1)(2ᵏ + 2⁻ᵏ)]. *)

val inner_radius : k:int -> j:int -> float
(** [δ_{j,k} = 2^(−k+j)]. *)

val granularity : k:int -> j:int -> float
(** [ρ_{j,k} = 2^(−3k+2j−1)]. *)
