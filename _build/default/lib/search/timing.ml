let pi1 = Rvu_numerics.Floats.pi +. 1.0

let search_circle_time delta = 2.0 *. pi1 *. delta

let search_annulus_time ~inner ~outer ~rho =
  let m = float_of_int (Rvu_numerics.Floats.ceil_div_pos (outer -. inner) (2.0 *. rho)) in
  2.0 *. pi1 *. (1.0 +. m) *. (inner +. (rho *. m))

let search_round_time k =
  if k < 1 then invalid_arg "Timing.search_round_time: k < 1";
  3.0 *. pi1 *. float_of_int (k + 1) *. Procedures.pow2 (k + 1)

let search_all_time n =
  if n < 1 then invalid_arg "Timing.search_all_time: n < 1";
  12.0 *. pi1 *. float_of_int n *. Procedures.pow2 n

let search_round_segments k =
  if k < 1 then invalid_arg "Timing.search_round_segments: k < 1";
  (* 2k annuli; annulus j has 2^(2k−j) + 1 circles of 3 segments each, plus
     the terminal wait: 3·(2^(2k+1) − 2 + 2k) + 1. *)
  (3 * ((1 lsl ((2 * k) + 1)) - 2 + (2 * k))) + 1

let search_all_segments n =
  if n < 1 then invalid_arg "Timing.search_all_segments: n < 1";
  let rec go acc k = if k > n then acc else go (acc + search_round_segments k) (k + 1) in
  go 0 1
