(** Archimedean spiral search — the classic baseline the paper's search
    algorithm is measured against.

    A robot that {e knows} its visibility radius [r] can search the plane
    with an Archimedean spiral of pitch slightly under [2r]: every point is
    swept at cost [O(d²/r)], with no [log] factor. The paper's Algorithm 4
    must work with [r] (and [d]) unknown and pays the extra
    [log(d²/r)] factor for re-searching at doubling granularities.
    Experiment E7 quantifies that price — the spiral wins whenever its
    assumption holds, by roughly the log factor.

    The spiral is realised as a polyline (the trajectory substrate is exact
    for lines and circular arcs; a true spiral is neither). The pitch is
    shrunk to compensate for the chord sag so the [rho]-coverage guarantee
    survives the approximation. *)

val program :
  rho:float -> ?segments_per_turn:int -> unit -> Rvu_trajectory.Program.t
(** [program ~rho ()] is an infinite outward spiral from the origin such
    that every point of the plane comes within [rho] of the trajectory: a
    quarter of [rho] is budgeted for the polyline's chord sag and the pitch
    uses the rest, with the angular step shrinking adaptively as the radius
    grows so the sag budget holds at every distance. [segments_per_turn]
    (default [64], minimum [8]) caps the angular step near the origin.
    Requires [rho > 0]. *)

val pitch : rho:float -> segments_per_turn:int -> float
(** The sag-compensated radial advance per full turn, [1.5·rho]. *)

val search_time_estimate : d:float -> rho:float -> float
(** Analytic estimate of the time for the spiral to sweep out to distance
    [d]: arc length of an Archimedean spiral with the given coverage pitch,
    [≈ π·d²/pitch]. The experiment compares this and the measured time. *)
