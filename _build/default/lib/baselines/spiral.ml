open Rvu_geom
open Rvu_trajectory

let two_pi = Rvu_numerics.Floats.two_pi

(* A quarter of the visibility budget is reserved for the polyline's chord
   sag; the remaining 3/4 per side gives the coverage pitch. The angular
   step shrinks adaptively with the radius so the sag stays within budget
   at every distance (a fixed step would eventually break coverage). *)
let sag_budget ~rho = rho /. 4.0

let pitch ~rho ~segments_per_turn:_ = 2.0 *. (rho -. sag_budget ~rho)

let program ~rho ?(segments_per_turn = 64) () =
  if rho <= 0.0 then invalid_arg "Spiral.program: rho <= 0";
  let spt = Stdlib.max 8 segments_per_turn in
  let base_step = two_pi /. float_of_int spt in
  let sag = sag_budget ~rho in
  let p = pitch ~rho ~segments_per_turn:spt in
  let radius_at theta = p *. theta /. two_pi in
  let rec gen theta pos () =
    let here = radius_at theta +. p in
    (* sag of a chord with angular extent step on radius R is ~ R step^2/8;
       step <= sqrt(2 sag / R) keeps it under half the budget. *)
    let step = Float.min base_step (sqrt (2.0 *. sag /. here)) in
    let theta' = theta +. step in
    let pos' = Vec2.of_polar ~radius:(radius_at theta') ~angle:theta' in
    Seq.Cons (Segment.line ~src:pos ~dst:pos', gen theta' pos')
  in
  gen 0.0 Vec2.zero

let search_time_estimate ~d ~rho =
  let p = pitch ~rho ~segments_per_turn:64 in
  (Rvu_numerics.Floats.pi *. d *. d /. p) +. d
