open Rvu_geom

(* Directions must be a pure function of (seed, leg index): lazy sequences
   are not memoized, so a shared mutable generator would yield a different
   walk on re-traversal. Each leg gets its own SplitMix64 stream keyed by
   the golden-ratio mix of its index. *)
let direction ~seed i =
  let key =
    Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
  in
  Rvu_workload.Rng.angle (Rvu_workload.Rng.create ~seed:key)

let program ~seed ?(step = 1.0) () =
  if step <= 0.0 then invalid_arg "Random_walk.program: step <= 0";
  let rec gen i pos () =
    let dst =
      Vec2.add pos (Vec2.of_polar ~radius:step ~angle:(direction ~seed i))
    in
    Seq.Cons (Rvu_trajectory.Segment.line ~src:pos ~dst, gen (i + 1) dst)
  in
  gen 0 Vec2.zero

let run ?resolution ?horizon ~seed_r ~seed_r' inst =
  Rvu_sim.Engine.run_two ?resolution ?horizon
    ~program_r:(program ~seed:seed_r ())
    ~program_r':(program ~seed:seed_r' ())
    inst
