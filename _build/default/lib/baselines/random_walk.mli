(** Randomized rendezvous — the contrast that motivates the paper's
    deterministic setting.

    Classical rendezvous theory (Alpern–Gal, cited by the paper) solves
    symmetric rendezvous with randomness: two robots performing independent
    random walks meet quickly in expectation, with no attribute asymmetry
    at all. The paper asks what can be done {e deterministically}, where
    identical robots are provably stuck (Theorem 4).

    This baseline makes the contrast executable — and makes a sharp point:
    a "random" walk driven by a PRNG is deterministic given its seed, so
    the seed acts as exactly one more hidden attribute. Two robots with
    {e different} seeds meet almost immediately; give them the {e same}
    seed and they are identical robots again — rigid relative motion,
    rendezvous impossible. Randomness helps precisely in so far as it is
    asymmetric. *)

val program :
  seed:int64 -> ?step:float -> unit -> Rvu_trajectory.Program.t
(** An infinite random waypoint walk from the origin: unit-speed legs of
    length [step] (default [1.0], must be positive) in directions drawn
    from a SplitMix64 stream seeded with [seed]. Deterministic given the
    seed. *)

val run :
  ?resolution:float ->
  ?horizon:float ->
  seed_r:int64 ->
  seed_r':int64 ->
  Rvu_sim.Engine.instance ->
  Rvu_sim.Detector.outcome * Rvu_sim.Detector.stats
(** Both robots walk randomly, each driven by its own seed (realised
    through its own frame and clock as usual). Equal seeds = the paper's
    identical-robot impossibility; distinct seeds = the classic randomized
    escape. *)
