lib/baselines/asymmetric.ml: Rvu_geom Rvu_search Rvu_sim Rvu_trajectory Seq
