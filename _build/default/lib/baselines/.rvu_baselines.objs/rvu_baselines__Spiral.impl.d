lib/baselines/spiral.ml: Float Rvu_geom Rvu_numerics Rvu_trajectory Segment Seq Stdlib Vec2
