lib/baselines/random_walk.mli: Rvu_sim Rvu_trajectory
