lib/baselines/random_walk.ml: Int64 Rvu_geom Rvu_sim Rvu_trajectory Rvu_workload Seq Vec2
