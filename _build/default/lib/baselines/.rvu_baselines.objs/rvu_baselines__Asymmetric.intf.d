lib/baselines/asymmetric.mli: Rvu_sim Rvu_trajectory
