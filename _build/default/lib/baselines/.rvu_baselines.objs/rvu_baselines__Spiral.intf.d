lib/baselines/spiral.mli: Rvu_trajectory
