let waiter () =
  let rest = Rvu_trajectory.Segment.wait ~at:Rvu_geom.Vec2.zero ~dur:1.0 in
  Seq.forever (fun () -> rest)

let searcher () = Rvu_search.Algorithm4.program ()

let run ?resolution ?horizon inst =
  Rvu_sim.Engine.run_two ?resolution ?horizon ~program_r:(searcher ())
    ~program_r':(waiter ()) inst

let time_bound ~d ~r = Rvu_search.Bounds.search_time_safe ~d ~r
