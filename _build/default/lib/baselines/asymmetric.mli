(** The asymmetric rendezvous baseline ("wait for mommy").

    The paper restricts itself to {e symmetric} rendezvous — both robots
    must run the same algorithm — and notes in the introduction that the
    corresponding asymmetric problem has an easy near-optimal solution: one
    robot waits at its initial position while the other searches for it.
    This module provides that strategy as a baseline so experiment E7 can
    quantify the cost of symmetry:

    - asymmetric rendezvous is solvable even for {e identical} robots
      (where Theorem 4 proves symmetric rendezvous impossible);
    - when symmetric rendezvous is feasible, the waiting baseline's time is
      the plain search time — no [1/μ] or clock-overlap inflation. *)

val waiter : unit -> Rvu_trajectory.Program.t
(** The waiting robot's "program": stay at the initial position forever
    (an infinite stream of unit waits). *)

val searcher : unit -> Rvu_trajectory.Program.t
(** The searching robot's program: the paper's Algorithm 4 (it still knows
    neither [d] nor [r]). *)

val run :
  ?resolution:float ->
  ?horizon:float ->
  Rvu_sim.Engine.instance ->
  Rvu_sim.Detector.outcome * Rvu_sim.Detector.stats
(** Execute the baseline on an instance: [R] searches, [R'] waits. *)

val time_bound : d:float -> r:float -> float
(** The baseline's analytic guarantee — exactly the (repaired) Theorem 1
    search bound, independent of every hidden attribute. *)
