(** Two-dimensional Euclidean vectors / points. *)

type t = { x : float; y : float }

val zero : t
val make : float -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

val dot : t -> t -> float
(** Euclidean inner product. *)

val cross : t -> t -> float
(** z-component of the 3D cross product: [a.x*b.y - a.y*b.x]. *)

val norm : t -> float
val norm2 : t -> float

val dist : t -> t -> float
val dist2 : t -> t -> float

val normalize : t -> t
(** Unit vector in the same direction. Raises [Invalid_argument] on the zero
    vector. *)

val lerp : t -> t -> float -> t
(** [lerp a b s] is [a + s·(b − a)]; [s] need not lie in [0, 1]. *)

val of_polar : radius:float -> angle:float -> t
(** [of_polar ~radius ~angle] is [(radius·cos angle, radius·sin angle)]. *)

val angle_of : t -> float
(** [atan2 y x], in [(−π, π\]]. Raises [Invalid_argument] on the zero
    vector. *)

val rotate : float -> t -> t
(** [rotate a v] rotates [v] counter-clockwise by angle [a]. *)

val perp : t -> t
(** Counter-clockwise perpendicular: [(x, y) ↦ (−y, x)]. *)

val equal : ?tol:float -> t -> t -> bool
(** Componentwise tolerant equality (see {!Rvu_numerics.Floats.equal}). *)

val pp : Format.formatter -> t -> unit
