(** Exact distance kernels between a point and the primitive shapes traced by
    the search algorithms (line segments and circular arcs).

    These are the closed-form fast paths of the rendezvous detector: for a
    static target (the search problem) or a waiting robot (the Algorithm 7
    overlap argument) the minimum distance over a whole trajectory segment is
    computed here without any sampling. *)

val point_segment : Vec2.t -> Vec2.t -> Vec2.t -> float
(** [point_segment p a b] is the minimum distance from [p] to the closed
    segment [\[a, b\]] (degenerate segments allowed). *)

val point_segment_param : Vec2.t -> Vec2.t -> Vec2.t -> float * float
(** As {!point_segment} but also returns the parameter [s ∈ \[0,1\]] of the
    closest point [a + s·(b − a)]. For degenerate segments [s = 0]. *)

val point_arc : Vec2.t -> center:Vec2.t -> radius:float -> from:float -> sweep:float -> float
(** [point_arc p ~center ~radius ~from ~sweep] is the minimum distance from
    [p] to the arc of the circle of the given [center]/[radius] starting at
    polar angle [from] and sweeping [sweep] radians (sign = direction,
    magnitude ≥ 2π means the full circle). Requires [radius >= 0]. *)

val point_circle : Vec2.t -> center:Vec2.t -> radius:float -> float
(** Distance to the full circle: [| |p − c| − radius |]. *)
