(** 2×2 real matrices, row-major: [\[\[a b\]; \[c d\]\]].

    The rendezvous analysis (Lemmas 4 and 5) is a story about 2×2 linear
    maps: the hidden attributes of robot [R'] act on the common trajectory as
    [v·R(φ)·F(χ)], and the induced search trajectory is the matrix
    [T∘ = I − v·R(φ)·F(χ)] whose QR factorisation drives both chirality
    cases. *)

type t = { a : float; b : float; c : float; d : float }

val identity : t
val make : a:float -> b:float -> c:float -> d:float -> t
val mul : t -> t -> t
val apply : t -> Vec2.t -> Vec2.t
val transpose : t -> t
val det : t -> float
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val rotation : float -> t
(** Counter-clockwise rotation by the given angle. *)

val reflect_x : t
(** Reflection about the x-axis, [diag(1, −1)] — the chirality flip. *)

val inverse : t -> t option
(** [None] when singular (|det| below 1e−12 of the matrix scale). *)

val is_orthogonal : ?tol:float -> t -> bool
(** [MᵀM = I] up to tolerance. *)

val qr : t -> (t * t) option
(** [qr m] is the thin QR factorisation [m = Q·R] with [Q] orthogonal
    ([det Q = +1]) and [R] upper triangular with non-negative top-left entry,
    computed by a Givens rotation. [None] when the first column of [m] is
    (numerically) zero, in which case [m = I·m] is already upper
    triangular. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
