lib/geom/mat2.mli: Format Vec2
