lib/geom/conformal.ml: Angle Format Mat2 Rvu_numerics Vec2
