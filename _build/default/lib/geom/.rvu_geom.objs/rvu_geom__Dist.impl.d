lib/geom/dist.ml: Angle Float Rvu_numerics Vec2
