lib/geom/angle.ml: Float Rvu_numerics
