lib/geom/vec2.ml: Float Format Rvu_numerics
