lib/geom/dist.mli: Vec2
