lib/geom/conformal.mli: Format Mat2 Vec2
