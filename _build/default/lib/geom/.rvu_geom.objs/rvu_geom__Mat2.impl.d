lib/geom/mat2.ml: Float Format Rvu_numerics Vec2
