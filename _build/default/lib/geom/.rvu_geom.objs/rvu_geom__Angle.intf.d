lib/geom/angle.mli:
