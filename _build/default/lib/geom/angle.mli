(** Angle bookkeeping on the circle.

    Compass orientations live in [\[0, 2π)] (the paper's convention for φ);
    arc parameterisations use unbounded sweeps (a full circle is a sweep of
    2π, several turns are larger sweeps). *)

val normalize : float -> float
(** Reduce to [\[0, 2π)]. *)

val normalize_signed : float -> float
(** Reduce to [(−π, π\]]. *)

val diff : float -> float -> float
(** [diff a b] is the signed angular distance from [b] to [a] in
    [(−π, π\]]. *)

val within_sweep : from:float -> sweep:float -> float -> bool
(** [within_sweep ~from ~sweep theta] holds when the direction [theta] lies
    on the arc starting at angle [from] and sweeping by [sweep] (positive =
    counter-clockwise). Sweeps of magnitude ≥ 2π cover the whole circle. *)

val of_degrees : float -> float
val to_degrees : float -> float
