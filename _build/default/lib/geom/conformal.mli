(** Orientation-aware similarity transforms of the plane.

    Lemma 4 of the paper states that robot [R'] executes the common
    trajectory through exactly this transform group: scale by its speed [v],
    reflect if its chirality is opposite ([χ = −1]), rotate by its compass
    offset [φ], and translate by the initial displacement. Similarities are
    conformal, so they map the circles and line segments of the search
    algorithms to circles and line segments — which is why the simulator can
    represent both robots' realised trajectories exactly. *)

type t = {
  scale : float;  (** similarity ratio, > 0 *)
  angle : float;  (** rotation, applied after the reflection *)
  reflect : bool;  (** reflection about the x-axis, applied first *)
  offset : Vec2.t;  (** translation, applied last *)
}

val identity : t

val make :
  ?scale:float -> ?angle:float -> ?reflect:bool -> ?offset:Vec2.t -> unit -> t
(** Defaults give the identity. Raises [Invalid_argument] if
    [scale <= 0]. *)

val linear : t -> Mat2.t
(** The linear part [scale · R(angle) · F(reflect)] as a matrix. *)

val apply : t -> Vec2.t -> Vec2.t
(** [apply f p] is [offset + linear f · p]. *)

val apply_linear : t -> Vec2.t -> Vec2.t
(** Linear part only (no translation): directions and displacements. *)

val chirality : t -> float
(** [+1.] if orientation-preserving, [−1.] otherwise — the paper's χ. *)

val map_angle : t -> float -> float
(** Image of a direction: [θ ↦ angle + χ·θ]. A point at polar angle θ on a
    circle around [c] maps to polar angle [map_angle f θ] on the image
    circle around [apply f c]. *)

val compose : t -> t -> t
(** [compose f g] applies [g] first: [apply (compose f g) p = apply f (apply
    g p)]. *)

val inverse : t -> t

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
