type t = { x : float; y : float }

let zero = { x = 0.0; y = 0.0 }
let make x y = { x; y }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let neg a = { x = -.a.x; y = -.a.y }
let scale s a = { x = s *. a.x; y = s *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let cross a b = (a.x *. b.y) -. (a.y *. b.x)
let norm2 a = dot a a
let norm a = Float.hypot a.x a.y
let dist2 a b = norm2 (sub a b)
let dist a b = Float.hypot (a.x -. b.x) (a.y -. b.y)

let normalize a =
  let n = norm a in
  if n = 0.0 then invalid_arg "Vec2.normalize: zero vector";
  scale (1.0 /. n) a

let lerp a b s = add a (scale s (sub b a))
let of_polar ~radius ~angle = { x = radius *. cos angle; y = radius *. sin angle }

let angle_of a =
  if a.x = 0.0 && a.y = 0.0 then invalid_arg "Vec2.angle_of: zero vector";
  atan2 a.y a.x

let rotate ang v =
  let c = cos ang and s = sin ang in
  { x = (c *. v.x) -. (s *. v.y); y = (s *. v.x) +. (c *. v.y) }

let perp v = { x = -.v.y; y = v.x }

let equal ?tol a b =
  Rvu_numerics.Floats.equal ?tol a.x b.x && Rvu_numerics.Floats.equal ?tol a.y b.y

let pp ppf v = Format.fprintf ppf "(%g, %g)" v.x v.y
