let two_pi = Rvu_numerics.Floats.two_pi

let normalize a =
  let r = Float.rem a two_pi in
  if r < 0.0 then r +. two_pi else r

let normalize_signed a =
  let r = normalize a in
  if r > Rvu_numerics.Floats.pi then r -. two_pi else r

let diff a b = normalize_signed (a -. b)

let within_sweep ~from ~sweep theta =
  if Float.abs sweep >= two_pi then true
  else if sweep >= 0.0 then normalize (theta -. from) <= sweep
  else normalize (from -. theta) <= -.sweep

let of_degrees d = d *. Rvu_numerics.Floats.pi /. 180.0
let to_degrees r = r *. 180.0 /. Rvu_numerics.Floats.pi
