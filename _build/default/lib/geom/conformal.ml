type t = { scale : float; angle : float; reflect : bool; offset : Vec2.t }

let identity = { scale = 1.0; angle = 0.0; reflect = false; offset = Vec2.zero }

let make ?(scale = 1.0) ?(angle = 0.0) ?(reflect = false) ?(offset = Vec2.zero)
    () =
  if scale <= 0.0 then invalid_arg "Conformal.make: scale must be positive";
  { scale; angle; reflect; offset }

let chirality f = if f.reflect then -1.0 else 1.0

let linear f =
  let base = if f.reflect then Mat2.reflect_x else Mat2.identity in
  Mat2.scale f.scale (Mat2.mul (Mat2.rotation f.angle) base)

let apply_linear f (p : Vec2.t) =
  let p = if f.reflect then Vec2.make p.x (-.p.y) else p in
  Vec2.scale f.scale (Vec2.rotate f.angle p)

let apply f p = Vec2.add f.offset (apply_linear f p)
let map_angle f theta = f.angle +. (chirality f *. theta)

let compose f g =
  (* (f ∘ g) p = f.off + s_f R_f F_f (g.off + s_g R_g F_g p).
     F_f · R_g = R_(−g) · F_f, so the combined rotation is
     angle_f + χ_f · angle_g and the reflection bits xor. *)
  {
    scale = f.scale *. g.scale;
    angle = f.angle +. (chirality f *. g.angle);
    reflect = f.reflect <> g.reflect;
    offset = apply f g.offset;
  }

let inverse f =
  let s = 1.0 /. f.scale in
  let angle = if f.reflect then f.angle else -.f.angle in
  let inv_lin = { scale = s; angle; reflect = f.reflect; offset = Vec2.zero } in
  { inv_lin with offset = Vec2.neg (apply_linear inv_lin f.offset) }

let equal ?tol f g =
  Rvu_numerics.Floats.equal ?tol f.scale g.scale
  && Rvu_numerics.Floats.equal ?tol
       (Angle.normalize f.angle)
       (Angle.normalize g.angle)
  && f.reflect = g.reflect
  && Vec2.equal ?tol f.offset g.offset

let pp ppf f =
  Format.fprintf ppf "{scale=%g; angle=%g; reflect=%b; offset=%a}" f.scale
    f.angle f.reflect Vec2.pp f.offset
