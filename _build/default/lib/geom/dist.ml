let point_segment_param p a b =
  let ab = Vec2.sub b a in
  let len2 = Vec2.norm2 ab in
  if len2 = 0.0 then (Vec2.dist p a, 0.0)
  else
    let s = Rvu_numerics.Floats.clamp ~lo:0.0 ~hi:1.0 (Vec2.dot (Vec2.sub p a) ab /. len2) in
    (Vec2.dist p (Vec2.lerp a b s), s)

let point_segment p a b = fst (point_segment_param p a b)

let point_circle p ~center ~radius = Float.abs (Vec2.dist p center -. radius)

let point_arc p ~center ~radius ~from ~sweep =
  if radius < 0.0 then invalid_arg "Dist.point_arc: negative radius";
  let rel = Vec2.sub p center in
  let on_full = point_circle p ~center ~radius in
  if Vec2.norm rel = 0.0 then radius
  else if Angle.within_sweep ~from ~sweep (Vec2.angle_of rel) then on_full
  else
    let endpoint theta = Vec2.add center (Vec2.of_polar ~radius ~angle:theta) in
    Float.min
      (Vec2.dist p (endpoint from))
      (Vec2.dist p (endpoint (from +. sweep)))
