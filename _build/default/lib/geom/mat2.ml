type t = { a : float; b : float; c : float; d : float }

let identity = { a = 1.0; b = 0.0; c = 0.0; d = 1.0 }
let make ~a ~b ~c ~d = { a; b; c; d }

let mul m n =
  {
    a = (m.a *. n.a) +. (m.b *. n.c);
    b = (m.a *. n.b) +. (m.b *. n.d);
    c = (m.c *. n.a) +. (m.d *. n.c);
    d = (m.c *. n.b) +. (m.d *. n.d);
  }

let apply m (v : Vec2.t) : Vec2.t =
  { x = (m.a *. v.x) +. (m.b *. v.y); y = (m.c *. v.x) +. (m.d *. v.y) }

let transpose m = { m with b = m.c; c = m.b }
let det m = (m.a *. m.d) -. (m.b *. m.c)
let add m n = { a = m.a +. n.a; b = m.b +. n.b; c = m.c +. n.c; d = m.d +. n.d }
let sub m n = { a = m.a -. n.a; b = m.b -. n.b; c = m.c -. n.c; d = m.d -. n.d }
let scale s m = { a = s *. m.a; b = s *. m.b; c = s *. m.c; d = s *. m.d }

let rotation ang =
  let c = cos ang and s = sin ang in
  { a = c; b = -.s; c = s; d = c }

let reflect_x = { a = 1.0; b = 0.0; c = 0.0; d = -1.0 }

let frobenius m =
  sqrt ((m.a *. m.a) +. (m.b *. m.b) +. (m.c *. m.c) +. (m.d *. m.d))

let inverse m =
  let dt = det m in
  if Float.abs dt <= 1e-12 *. Float.max 1.0 (frobenius m) then None
  else
    let k = 1.0 /. dt in
    Some { a = k *. m.d; b = -.k *. m.b; c = -.k *. m.c; d = k *. m.a }

let equal ?tol m n =
  let eq = Rvu_numerics.Floats.equal ?tol in
  eq m.a n.a && eq m.b n.b && eq m.c n.c && eq m.d n.d

let is_orthogonal ?tol m = equal ?tol (mul (transpose m) m) identity

let qr m =
  (* Givens rotation zeroing the (2,1) entry: Q = [[c, -s], [s, c]] with
     c = a/ρ, s = c₂₁/ρ, ρ = √(a² + c²). Then R = Qᵀ·m. *)
  let rho = Float.hypot m.a m.c in
  if rho = 0.0 then None
  else
    let c = m.a /. rho and s = m.c /. rho in
    let q = { a = c; b = -.s; c = s; d = c } in
    let r = mul (transpose q) m in
    (* Clean the provably-zero entry so downstream exact matches work. *)
    Some (q, { r with c = 0.0 })

let pp ppf m = Format.fprintf ppf "[[%g %g]; [%g %g]]" m.a m.b m.c m.d
