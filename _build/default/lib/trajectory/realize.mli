(** Realisation: a local program + hidden attributes → a global timed
    trajectory.

    A robot whose distance unit is [scale] (speed × local time unit, per the
    paper's model section), compass offset is [angle], chirality is
    [reflect], initial position is [offset] and local time unit is
    [time_unit] traces, for the local program [S], the global trajectory
    [t ↦ offset + scale·R(angle)·F(reflect)·S(t / time_unit)]. This module
    performs that change of frame lazily, segment by segment. *)

type clocked = {
  frame : Rvu_geom.Conformal.t;
      (** Spatial similarity: the robot's distance unit, compass and start. *)
  time_unit : float;
      (** Global seconds per local time unit (the paper's τ for [R'], [1.]
          for [R]). Must be positive. *)
}

val identity : clocked
(** The reference robot [R]: global frame, unit clock. *)

val make : frame:Rvu_geom.Conformal.t -> time_unit:float -> clocked

val realize : ?start:float -> clocked -> Program.t -> Timed.t Seq.t
(** [realize ?start c p] is the lazy stream of globally timed segments, the
    first starting at global time [start] (default [0.]). Zero-duration
    segments are dropped (they occupy no time and cannot move the robot).
    Timestamps are accumulated with compensated summation so that segment
    billions of a long schedule still start at accurate times. *)

val position : clocked -> Program.t -> float -> Rvu_geom.Vec2.t
(** [position c p t] evaluates the realised trajectory at global time [t]
    by walking the program (linear cost; tests and examples only). *)
