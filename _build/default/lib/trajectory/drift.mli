(** Drifting clocks — a "dynamic attribute" extension (paper Section 5
    future work; cf. the dynamic-compass models of Izumi et al. cited
    there).

    The paper's robot [R'] has one fixed clock rate τ. Here the rate may
    vary over a repeating pattern of phases, each a [(local_duration,
    rate)] pair: while the robot's local clock advances by [local_duration],
    the global clock advances [rate] times as fast. A constant pattern
    [\[(1., τ)\]] reproduces the paper's model exactly.

    Realisation stays exact: local segments are {e split} at every phase
    boundary ({!Segment.split}), so each emitted timed segment is traversed
    uniformly and the two-robot detector applies unchanged. *)

type pattern = private { phases : (float * float) list }
(** Cyclic rate schedule; every duration and rate positive. *)

val pattern : (float * float) list -> pattern
(** Validates: non-empty, all durations and rates positive. *)

val constant : float -> pattern
(** The paper's fixed-τ clock. *)

val oscillating :
  mean:float -> amplitude:float -> half_period:float -> pattern
(** Rate alternating between [mean·(1−amplitude)] and [mean·(1+amplitude)],
    spending [half_period] local time in each phase. Requires
    [0 <= amplitude < 1], positive mean and half-period. Its long-run mean
    rate is [mean]. *)

val mean_rate : pattern -> float
(** Long-run global seconds per local second: total global extent of one
    cycle over its local extent. *)

val realize :
  ?start:float ->
  frame:Rvu_geom.Conformal.t ->
  pattern ->
  Program.t ->
  Timed.t Seq.t
(** Like {!Realize.realize} but with the drifting clock. Lazy; O(1) memory;
    zero-duration pieces are dropped. *)
