type pattern = { phases : (float * float) list }

let pattern phases =
  if phases = [] then invalid_arg "Drift.pattern: empty schedule";
  List.iter
    (fun (dur, rate) ->
      if dur <= 0.0 then invalid_arg "Drift.pattern: non-positive duration";
      if rate <= 0.0 then invalid_arg "Drift.pattern: non-positive rate")
    phases;
  { phases }

let constant rate = pattern [ (1.0, rate) ]

let oscillating ~mean ~amplitude ~half_period =
  if amplitude < 0.0 || amplitude >= 1.0 then
    invalid_arg "Drift.oscillating: amplitude outside [0, 1)";
  pattern
    [
      (half_period, mean *. (1.0 -. amplitude));
      (half_period, mean *. (1.0 +. amplitude));
    ]

let mean_rate { phases } =
  let local = List.fold_left (fun acc (d, _) -> acc +. d) 0.0 phases in
  let global = List.fold_left (fun acc (d, r) -> acc +. (d *. r)) 0.0 phases in
  global /. local

(* Walker state: global time accumulator (compensated), the remaining
   phases of the current cycle, and how much local time is left in the
   current phase. *)
type state = {
  sum : float;
  comp : float;
  remaining : (float * float) list; (* current cycle tail, head = active *)
  left : float; (* local time left in the active phase *)
}

let advance st dur =
  let t = st.sum +. dur in
  let comp =
    if Float.abs st.sum >= Float.abs dur then st.comp +. ((st.sum -. t) +. dur)
    else st.comp +. ((dur -. t) +. st.sum)
  in
  { st with sum = t; comp }

let now st = st.sum +. st.comp

let realize ?(start = 0.0) ~frame pat program =
  let cycle = pat.phases in
  let initial =
    match cycle with
    | (d, _) :: _ -> { sum = start; comp = 0.0; remaining = cycle; left = d }
    | [] -> assert false
  in
  let rate st =
    match st.remaining with (_, r) :: _ -> r | [] -> assert false
  in
  let next_phase st =
    match st.remaining with
    | _ :: ((d, _) :: _ as rest) -> { st with remaining = rest; left = d }
    | [ _ ] | [] -> begin
        match cycle with
        | (d, _) :: _ -> { st with remaining = cycle; left = d }
        | [] -> assert false
      end
  in
  (* Emit one local segment, splitting at phase boundaries. *)
  let rec emit st seg rest_program () =
    let ldur = Segment.duration seg in
    if st.left <= 0.0 then emit (next_phase st) seg rest_program ()
    else if ldur <= 1e-15 then step st rest_program ()
    else if ldur <= st.left then begin
      let gdur = rate st *. ldur in
      let st' = advance { st with left = st.left -. ldur } gdur in
      let timed = Timed.make ~t0:(now st) ~dur:gdur ~shape:(Segment.map frame seg) in
      Seq.Cons (timed, step st' rest_program)
    end
    else begin
      let before, after = Segment.split seg st.left in
      let gdur = rate st *. st.left in
      let timed =
        Timed.make ~t0:(now st) ~dur:gdur ~shape:(Segment.map frame before)
      in
      let st' = next_phase (advance st gdur) in
      Seq.Cons (timed, emit st' after rest_program)
    end
  and step st program () =
    match program () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (seg, rest) -> emit st seg rest ()
  in
  step initial program
