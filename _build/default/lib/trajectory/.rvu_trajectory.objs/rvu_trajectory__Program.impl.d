lib/trajectory/program.ml: Format List Rvu_geom Rvu_numerics Segment Seq Vec2
