lib/trajectory/program.mli: Rvu_geom Segment Seq Vec2
