lib/trajectory/timed.mli: Format Rvu_geom Segment Vec2
