lib/trajectory/realize.mli: Program Rvu_geom Seq Timed
