lib/trajectory/realize.ml: Conformal Float Program Rvu_geom Segment Seq Timed
