lib/trajectory/drift.ml: Float List Segment Seq Timed
