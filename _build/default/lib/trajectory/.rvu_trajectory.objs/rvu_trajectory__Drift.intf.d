lib/trajectory/drift.mli: Program Rvu_geom Seq Timed
