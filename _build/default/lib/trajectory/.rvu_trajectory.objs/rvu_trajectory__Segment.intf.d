lib/trajectory/segment.mli: Conformal Format Rvu_geom Vec2
