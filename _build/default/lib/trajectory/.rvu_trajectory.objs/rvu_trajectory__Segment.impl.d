lib/trajectory/segment.ml: Conformal Float Format Rvu_geom Rvu_numerics Vec2
