lib/trajectory/timed.ml: Float Format Rvu_numerics Segment
