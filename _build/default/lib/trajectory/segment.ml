open Rvu_geom

type t =
  | Wait of { pos : Vec2.t; dur : float }
  | Line of { src : Vec2.t; dst : Vec2.t }
  | Arc of { center : Vec2.t; radius : float; from : float; sweep : float }

let wait ~at ~dur =
  if dur < 0.0 then invalid_arg "Segment.wait: negative duration";
  Wait { pos = at; dur }

let line ~src ~dst = Line { src; dst }

let arc ~center ~radius ~from ~sweep =
  if radius < 0.0 then invalid_arg "Segment.arc: negative radius";
  Arc { center; radius; from; sweep }

let full_circle ?(from = 0.0) ~center ~radius () =
  arc ~center ~radius ~from ~sweep:Rvu_numerics.Floats.two_pi

let length = function
  | Wait _ -> 0.0
  | Line { src; dst } -> Vec2.dist src dst
  | Arc { radius; sweep; _ } -> radius *. Float.abs sweep

let duration = function Wait { dur; _ } -> dur | seg -> length seg

let point_on_arc ~center ~radius theta =
  Vec2.add center (Vec2.of_polar ~radius ~angle:theta)

let start_pos = function
  | Wait { pos; _ } -> pos
  | Line { src; _ } -> src
  | Arc { center; radius; from; _ } -> point_on_arc ~center ~radius from

let end_pos = function
  | Wait { pos; _ } -> pos
  | Line { dst; _ } -> dst
  | Arc { center; radius; from; sweep } ->
      point_on_arc ~center ~radius (from +. sweep)

let position seg u =
  let dur = duration seg in
  let f =
    if dur <= 0.0 then 0.0
    else Rvu_numerics.Floats.clamp ~lo:0.0 ~hi:1.0 (u /. dur)
  in
  match seg with
  | Wait { pos; _ } -> pos
  | Line { src; dst } -> Vec2.lerp src dst f
  | Arc { center; radius; from; sweep } ->
      point_on_arc ~center ~radius (from +. (f *. sweep))

let split seg u =
  let dur = duration seg in
  if u < 0.0 || u > dur then invalid_arg "Segment.split: time outside segment";
  let f = if dur <= 0.0 then 0.0 else u /. dur in
  match seg with
  | Wait { pos; _ } -> (Wait { pos; dur = u }, Wait { pos; dur = dur -. u })
  | Line { src; dst } ->
      let mid = Vec2.lerp src dst f in
      (Line { src; dst = mid }, Line { src = mid; dst })
  | Arc { center; radius; from; sweep } ->
      let cut = f *. sweep in
      ( Arc { center; radius; from; sweep = cut },
        Arc { center; radius; from = from +. cut; sweep = sweep -. cut } )

let map frame = function
  | Wait { pos; dur } -> Wait { pos = Conformal.apply frame pos; dur }
  | Line { src; dst } ->
      Line { src = Conformal.apply frame src; dst = Conformal.apply frame dst }
  | Arc { center; radius; from; sweep } ->
      Arc
        {
          center = Conformal.apply frame center;
          radius = frame.Conformal.scale *. radius;
          from = Conformal.map_angle frame from;
          sweep = Conformal.chirality frame *. sweep;
        }

let pp ppf = function
  | Wait { pos; dur } -> Format.fprintf ppf "wait@%a dur=%g" Vec2.pp pos dur
  | Line { src; dst } -> Format.fprintf ppf "line %a -> %a" Vec2.pp src Vec2.pp dst
  | Arc { center; radius; from; sweep } ->
      Format.fprintf ppf "arc c=%a r=%g from=%g sweep=%g" Vec2.pp center radius
        from sweep
