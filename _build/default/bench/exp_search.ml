(* E1 — Theorem 1: search time vs the analytic bound.

   Sweeps the difficulty ratio d²/r across three distance scales, measures
   the Algorithm 4 search time over several bearings (worst of them), and
   compares against: the Lemma 2 completion time of the predicted discovery
   round, the Theorem 1 bound as printed, and the repaired Theorem 1 bound
   (see Rvu_search.Bounds for the Lemma 3 discrepancy). *)

open Rvu_report

let bearings = [ 0.0; 0.9; 2.1; 3.3; 4.6; 5.8 ]

let run () =
  Util.banner "E1" "Theorem 1: search time vs bound (Algorithm 4)";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "d"; "r"; "d^2/r"; "round k"; "worst T"; "round bound";
             "thm1 printed"; "thm1 safe"; "T/safe"; "printed ok?";
           ])
  in
  let violations = ref 0 and rows = ref 0 in
  List.iter
    (fun d ->
      List.iter
        (fun ratio ->
          let r = d *. d /. ratio in
          let worst =
            List.fold_left
              (fun acc bearing -> Float.max acc (fst (Util.search_time ~d ~r ~bearing)))
              0.0 bearings
          in
          let round = Rvu_search.Predict.discovery_round ~d ~r in
          let round_bound = Rvu_search.Bounds.time_through_round round in
          let printed = Rvu_search.Bounds.search_time ~d ~r in
          let safe = Rvu_search.Bounds.search_time_safe ~d ~r in
          let ok = worst <= printed in
          incr rows;
          if not ok then incr violations;
          Table.add_row t
            [
              Table.fstr d; Table.fstr r; Table.fstr ratio; Table.istr round;
              Table.fstr worst; Table.fstr round_bound; Table.fstr printed;
              Table.fstr safe;
              Table.fstr (worst /. safe);
              (if ok then "yes" else "NO");
            ];
          assert (worst <= safe);
          assert (worst <= round_bound))
        [ 16.0; 48.0; 112.0; 256.0; 704.0 ])
    [ 1.0; 2.0; 4.0 ];
  Util.table ~id:"e1" t;
  Util.note
    "All runs within the repaired bound; the printed Theorem 1 bound fails on %d/%d rows."
    !violations !rows;

  (* Hard band: instances whose r falls in the gap between the granularity
     of round k-1 (too coarse — misses) and round k — the regime where the
     printed Lemma 3 is wrong and the printed Theorem 1 bound can fail. *)
  Util.banner "E1b" "Theorem 1 hard band: the Lemma 3 gap made visible";
  let t2 =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "d"; "r"; "d^2/r"; "2^k"; "2^(k+1)"; "round k"; "worst T";
             "thm1 printed"; "thm1 safe"; "printed ok?";
           ])
  in
  let d = 2.06 in
  List.iter
    (fun k ->
      let j = int_of_float (floor (Rvu_numerics.Floats.log2 d)) + k in
      let r = 0.92 *. Rvu_search.Procedures.granularity ~k:(k - 1) ~j:(j - 1) in
      let round = Rvu_search.Predict.discovery_round ~d ~r in
      let worst =
        List.fold_left
          (fun acc bearing -> Float.max acc (fst (Util.search_time ~d ~r ~bearing)))
          0.0 bearings
      in
      let printed = Rvu_search.Bounds.search_time ~d ~r in
      let safe = Rvu_search.Bounds.search_time_safe ~d ~r in
      assert (worst <= safe);
      Table.add_row t2
        [
          Table.fstr d; Table.fstr r;
          Table.fstr (d *. d /. r);
          Table.fstr (Rvu_search.Procedures.pow2 round);
          Table.fstr (Rvu_search.Procedures.pow2 (round + 1));
          Table.istr round; Table.fstr worst; Table.fstr printed;
          Table.fstr safe;
          (if worst <= printed then "yes" else "NO (Lemma 3 gap)");
        ])
    [ 4; 5; 6; 7 ];
  Util.table ~id:"e1b" t2;
  Util.note
    "Rows with d^2/r < 2^(k+1) falsify Lemma 3 as printed; when the target is also";
  Util.note
    "found late in round k the printed Theorem 1 bound fails while the repaired";
  Util.note "(doubled) bound always holds. See Rvu_search.Bounds for the analysis."
