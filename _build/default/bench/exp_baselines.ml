(* E7 — baselines: what the paper's assumptions cost.

   (a) Search: an Archimedean spiral that KNOWS the visibility radius r
       (pitch ~ 2r) vs Algorithm 4 which knows neither d nor r. The spiral
       wins in the worst case by roughly the log(d²/r) factor — the price
       Algorithm 4 pays for universality.

   (b) Rendezvous: the asymmetric wait-for-mommy baseline (one robot waits,
       the other searches — forbidden by the paper's symmetry requirement)
       vs the symmetric universal Algorithm 7. The baseline solves even the
       instances Theorem 4 proves impossible for symmetric algorithms —
       quantifying exactly what symmetry costs. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let bearings = [ 0.0; 0.9; 2.1; 3.3; 4.6; 5.8 ]

let worst_search ~program_of ~d ~r =
  List.fold_left
    (fun acc bearing ->
      let target = Vec2.of_polar ~radius:d ~angle:bearing in
      match Rvu_sim.Search_engine.run ~program:(program_of ()) ~target ~r () with
      | Rvu_sim.Search_engine.Found t, _ -> Float.max acc t
      | _ -> failwith "baseline search must succeed")
    0.0 bearings

let run_search_comparison () =
  Util.banner "E7a" "Search: spiral (knows r) vs Algorithm 4 (knows nothing)";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "d"; "r"; "log2(d^2/r)"; "spiral worst T"; "spiral est.";
             "alg4 worst T"; "alg4 guarantee"; "guarantee/spiral";
           ])
  in
  List.iter
    (fun (d, r) ->
      let spiral =
        worst_search ~program_of:(fun () -> Rvu_baselines.Spiral.program ~rho:r ()) ~d ~r
      in
      let alg4 =
        worst_search ~program_of:Rvu_search.Algorithm4.program ~d ~r
      in
      let guarantee =
        Rvu_search.Bounds.time_through_round
          (Rvu_search.Predict.discovery_round ~d ~r)
      in
      Table.add_row t
        [
          Table.fstr d; Table.fstr r;
          Table.fstr (Rvu_numerics.Floats.log2 (d *. d /. r));
          Table.fstr spiral;
          Table.fstr (Rvu_baselines.Spiral.search_time_estimate ~d ~rho:r);
          Table.fstr alg4;
          Table.fstr guarantee;
          Table.fstr (guarantee /. spiral);
        ])
    [ (1.0, 0.2); (1.0, 0.05); (2.0, 0.2); (2.0, 0.05); (4.0, 0.2); (4.0, 0.05) ];
  Util.table ~id:"e7a" t;
  Util.note
    "Two regimes, both visible: on a handful of bearings Algorithm 4 is often FASTER";
  Util.note
    "than the spiral (it revisits the target's distance band early in every round),";
  Util.note
    "but its worst-case GUARANTEE pays the log(d^2/r) universality factor: the";
  Util.note
    "guarantee/spiral column grows with log2(d^2/r), exactly the Theorem 1 shape.";
  Util.note
    "The spiral's time is bearing-independent (~pi d^2/pitch) but requires knowing r."

let run_rendezvous_comparison () =
  Util.banner "E7b" "Rendezvous: asymmetric wait-for-mommy vs symmetric Algorithm 7";
  let d = 1.5 and r = 0.2 in
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "attributes";
          Table.column ~align:Table.Left "symmetric verdict";
          Table.column "symmetric T";
          Table.column "baseline T";
          Table.column "sym/baseline";
        ]
  in
  List.iter
    (fun (label, attributes) ->
      let inst =
        Rvu_sim.Engine.instance ~attributes
          ~displacement:(Vec2.of_polar ~radius:d ~angle:0.9)
          ~r
      in
      let baseline =
        match Rvu_baselines.Asymmetric.run ~horizon:1e8 inst with
        | Rvu_sim.Detector.Hit time, _ -> time
        | _ -> failwith "the waiting baseline always succeeds"
      in
      assert (baseline <= Rvu_baselines.Asymmetric.time_bound ~d ~r);
      let verdict = Feasibility.classify attributes in
      let symmetric =
        match verdict with
        | Feasibility.Infeasible -> None
        | Feasibility.Feasible _ -> begin
            match (Rvu_sim.Engine.run ~horizon:1e8 inst).Rvu_sim.Engine.outcome with
            | Rvu_sim.Detector.Hit time -> Some time
            | _ -> failwith "feasible instance must meet"
          end
      in
      Table.add_row t
        [
          label;
          Util.verdict_string verdict;
          (match symmetric with Some x -> Table.fstr x | None -> "never");
          Table.fstr baseline;
          (match symmetric with
          | Some x -> Table.fstr (x /. baseline)
          | None -> "inf");
        ])
    [
      ("identical robots", Attributes.reference);
      ("mirror twin phi=pi/2",
       Attributes.make ~phi:(Float.pi /. 2.0) ~chi:Attributes.Opposite ());
      ("v = 2", Attributes.make ~v:2.0 ());
      ("tau = 0.5", Attributes.make ~tau:0.5 ());
      ("phi = 2pi/3", Attributes.make ~phi:(2.0 *. Float.pi /. 3.0) ());
    ];
  Util.table ~id:"e7b" t;
  Util.note
    "The asymmetric baseline meets on EVERY row — including the two where Theorem 4";
  Util.note
    "proves symmetric rendezvous impossible. Where both solve the instance the";
  Util.note
    "baseline is faster: the sym/baseline column is the measured price of symmetry."

let run_randomized_comparison () =
  Util.banner "E7c" "Randomized rendezvous: the seed is just another attribute";
  let d = 2.0 and r = 0.5 and horizon = 1e5 in
  let inst =
    Rvu_sim.Engine.instance ~attributes:Attributes.reference
      ~displacement:(Vec2.make d 0.0) ~r
  in
  let runs ~same_seed =
    List.filter_map
      (fun s ->
        let seed_r = Int64.of_int s in
        let seed_r' = if same_seed then seed_r else Int64.of_int (100 + s) in
        match Rvu_baselines.Random_walk.run ~horizon ~seed_r ~seed_r' inst with
        | Rvu_sim.Detector.Hit t, _ -> Some t
        | _ -> None)
      (List.init 10 (fun i -> i + 1))
  in
  let diff = runs ~same_seed:false and same = runs ~same_seed:true in
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "strategy (identical robots!)";
          Table.column "met (of 10 seeds)";
          Table.column "mean meeting time";
          Table.column "guarantee";
        ]
  in
  Table.add_row t
    [
      "random walks, different seeds";
      Table.istr (List.length diff);
      (match Rvu_numerics.Stats.summarize diff with
      | Some s -> Table.fstr s.Rvu_numerics.Stats.mean
      | None -> "-");
      "P=1 eventually, E[T] infinite";
    ];
  Table.add_row t
    [
      "random walks, same seed";
      Table.istr (List.length same);
      "-";
      "never (identical robots)";
    ];
  Table.add_row t
    [ "universal Algorithm 7"; "0"; "-"; "never (Theorem 4: infeasible)" ];
  Util.table ~id:"e7c" t;
  Util.note
    "A PRNG seed is one more hidden attribute: different seeds break symmetry and";
  Util.note
    "the walkers usually meet fast, but 2-D random walks are null-recurrent - some";
  Util.note
    "seed pairs blow past the horizon and the EXPECTED meeting time is infinite.";
  Util.note
    "The paper's deterministic algorithm gives the opposite trade: no luck involved,";
  Util.note
    "guaranteed finite time - but only when some physical attribute differs."

let run () =
  run_search_comparison ();
  run_rendezvous_comparison ();
  run_randomized_comparison ()
