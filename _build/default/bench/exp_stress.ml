(* STRESS — deep-schedule scalability of the lazy simulator.

   Algorithm 7's rounds grow as Θ(4ⁿ); these instances push the detector
   through millions of segment-pair intervals (round ~10 of the schedule)
   to demonstrate that the lazy-stream architecture sustains it in constant
   memory. Reported: hit time, the round it lands in, intervals scanned and
   scan throughput. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let cases =
  [
    (* d, r, tau *)
    (1.5, 0.4, 0.5);
    (3.0, 0.1, 0.75);
    (6.0, 0.02, 0.93);
    (10.0, 0.005, 0.97);
  ]

let run () =
  Util.banner "STRESS" "Deep schedules: millions of intervals, O(1) memory";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "d"; "r"; "tau"; "hit time"; "round"; "intervals";
             "wall (s)"; "Mintervals/s";
           ])
  in
  List.iter
    (fun (d, r, tau) ->
      let inst =
        Rvu_sim.Engine.instance
          ~attributes:(Attributes.make ~tau ())
          ~displacement:(Vec2.make d (0.3 *. d))
          ~r
      in
      let res, wall =
        Util.wall_clock (fun () -> Rvu_sim.Engine.run ~horizon:1e13 inst)
      in
      match res.Rvu_sim.Engine.outcome with
      | Rvu_sim.Detector.Hit time ->
          let round =
            match Phases.phase_at time with Some (n, _) -> n | None -> 0
          in
          let intervals = res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals in
          Table.add_row t
            [
              Table.fstr d; Table.fstr r; Table.fstr tau; Table.fstr time;
              Table.istr round; Table.istr intervals; Table.fstr wall;
              Table.fstr (float_of_int intervals /. Float.max 1e-9 wall /. 1e6);
            ]
      | _ -> failwith "stress instances are feasible and must meet")
    cases;
  Util.table ~id:"stress" t;
  Util.note
    "The deepest row walks the schedule into round ~10 (tens of millions of";
  Util.note
    "trajectory segments would exist eagerly); the stream scans >1M segment-pair";
  Util.note "intervals per second in constant memory."
