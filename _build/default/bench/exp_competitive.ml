(* E10 — the price of ignorance: competitive ratio against the omniscient
   optimum.

   Robots that knew everything (positions, attributes) would walk straight
   at each other and meet at T_opt = (d - r)/(1 + v). The universal
   algorithm knows nothing; its measured meeting time divided by T_opt is
   the empirical competitive ratio, reported across attribute classes and
   instance difficulties. The related-work gathering literature ([12] in
   the paper) optimises exactly this kind of ratio. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let run () =
  Util.banner "E10" "Competitive ratio: universal algorithm vs omniscient optimum";
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "attributes";
          Table.column "d"; Table.column "r"; Table.column "T_opt";
          Table.column "measured T"; Table.column "ratio";
        ]
  in
  let cases =
    [
      ("v = 2", Attributes.make ~v:2.0 ());
      ("v = 1.1", Attributes.make ~v:1.1 ());
      ("phi = pi (rotation)", Attributes.make ~phi:Float.pi ());
      ("phi = 0.2 (slight rotation)", Attributes.make ~phi:0.2 ());
      ("tau = 0.5 (clock)", Attributes.make ~tau:0.5 ());
      ("mirror, v = 0.5", Attributes.make ~v:0.5 ~phi:1.0 ~chi:Attributes.Opposite ());
    ]
  in
  let geometries = [ (1.5, 0.3); (3.0, 0.1) ] in
  let ratios = ref [] in
  List.iter
    (fun (label, attributes) ->
      List.iter
        (fun (d, r) ->
          let t_opt = Bounds.offline_optimum attributes ~d ~r in
          let time, _ =
            Util.hit_time
              ~program:(Universal.program ())
              ~attributes
              ~displacement:(Vec2.of_polar ~radius:d ~angle:0.9)
              ~r ()
          in
          let ratio = time /. t_opt in
          ratios := ratio :: !ratios;
          Table.add_row t
            [
              label; Table.fstr d; Table.fstr r; Table.fstr t_opt;
              Table.fstr time; Table.fstr ratio;
            ])
        geometries)
    cases;
  Util.table ~id:"e10" t;
  (match Rvu_numerics.Stats.summarize !ratios with
  | Some s ->
      Util.note
        "Empirical competitive ratios span %.3g - %.3g (median %.3g): the price of"
        s.Rvu_numerics.Stats.min s.Rvu_numerics.Stats.max
        s.Rvu_numerics.Stats.median
  | None -> ());
  Util.note
    "running blind. Ratios worsen as the symmetry-breaking signal weakens (phi or";
  Util.note
    "v near the infeasible manifold) and as d^2/r grows - matching the bounds'";
  Util.note "1/mu and log(d^2/r) shapes."
