(* E4 — Theorem 3 / Lemma 13: asymmetric clocks.

   Sweeps τ = t·2⁻ᵃ over both Lemma 13 regimes (t ≤ 2/3 and t > 2/3) and
   over a ∈ {0, 1}, runs Algorithm 7, and reports the measured rendezvous
   time and round against the Lemma 13 round bound k* and the completion
   time of k* rounds. The measured round must never exceed k*. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let run () =
  Util.banner "E4" "Theorem 3: asymmetric clocks under Algorithm 7";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "d"; "r"; "tau"; "a"; "t"; "searcher n"; "k* (L13)"; "measured T";
             "measured round"; "time bound"; "T/bound";
           ])
  in
  List.iter
    (fun ((d, r), tau) ->
      let attributes = Attributes.make ~tau () in
      let a, tt = Bounds.tau_decomposition (if tau < 1.0 then tau else 1.0 /. tau) in
      let n = Bounds.searcher_round attributes ~d ~r in
      let k_star = Bounds.asymmetric_round attributes ~d ~r in
      let bound = Bounds.asymmetric_time attributes ~d ~r in
      let time, _ =
        Util.hit_time
          ~program:(Universal.program ())
          ~attributes
          ~displacement:(Vec2.of_polar ~radius:d ~angle:0.7)
          ~r ()
      in
      let round =
        (* Round is counted on the searcher's (slower) clock. *)
        let local = if tau < 1.0 then time else time /. tau in
        match Phases.phase_at local with Some (k, _) -> k | None -> 0
      in
      assert (round <= k_star);
      assert (time <= bound);
      Table.add_row t
        [
          Table.fstr d; Table.fstr r;
          Table.fstr tau; Table.istr a; Table.fstr tt; Table.istr n;
          Table.istr k_star; Table.fstr time; Table.istr round;
          Table.fstr bound; Table.fstr (time /. bound);
        ])
    (Rvu_workload.Sweep.grid
       [ (1.5, 0.4); (3.0, 0.1) ]
       [ 0.5; 0.55; 0.6; 0.66; 0.7; 0.75; 0.8; 0.85; 0.9; 0.3; 0.35; 0.45; 2.0; 1.5 ]);
  Util.table ~id:"e4" t;

  (* E4b: the paper's exact Lemma 11 / Lemma 12 (Lambert W) rounds against
     the Lemma 13 simplification the headline bound uses. *)
  Util.banner "E4b" "Lemma 11/12 exact rounds vs the Lemma 13 simplification";
  let t2 =
    Table.create
      ~columns:
        (List.map Table.column
           [ "tau"; "n"; "regime"; "exact k (L11/L12+W)"; "simplified k* (L13)" ])
  in
  List.iter
    (fun (tau, n) ->
      let exact, regime =
        match (Bounds.lemma11_round ~tau ~n, Bounds.lemma12_round ~tau ~n) with
        | Some k, None -> (k, "t<=2/3 (L9/L11)")
        | None, Some k -> (k, "t>2/3 (L10/L12)")
        | _ -> failwith "exactly one regime must apply"
      in
      assert (exact <= Bounds.round_bound ~tau ~n);
      Table.add_row t2
        [
          Table.fstr tau; Table.istr n; regime; Table.istr exact;
          Table.istr (Bounds.round_bound ~tau ~n);
        ])
    (Rvu_workload.Sweep.grid [ 0.5; 0.6; 0.75; 0.9; 0.95 ] [ 1; 4; 8; 12 ]);
  Util.table ~id:"e4b" t2;
  Util.note
    "The Lambert-W form is sharper by several rounds (each round is 4x longer than";
  Util.note "the last, so this is orders of magnitude in the time bound).";
  Util.note
    "Measured rounds stay far below k*: the robots almost always meet while both are";
  Util.note
    "active — the Lemma 13 waiting-overlap mechanism is a (very pessimistic) fallback.";
  Util.note
    "Shape check: k* jumps as t crosses 2/3 (regime switch) and grows with a — both visible above."
