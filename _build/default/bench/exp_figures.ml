(* F1/F2/F3 — the paper's three (schematic) figures, regenerated from the
   actual schedule and overlap machinery.

   F1 (Figure 1): the round structure of Algorithm 7 — alternating inactive
   and active phases of geometrically growing length.

   F2 (Figure 2): the internal structure of one active phase —
   SearchAll(n) forwards then SearchAllRev(n) backwards.

   F3 (Figure 3): the two ways R's active phases overlap R''s inactive
   phases under clock asymmetry, and the unbounded growth of that overlap
   (the engine of Theorem 3). *)

open Rvu_core
open Rvu_report

let run_f1 () =
  Util.banner "F1" "Figure 1: rounds of Algorithm 7 (sqrt-warped time axis)";
  let rounds = 6 in
  let t_max = Phases.round_end rounds in
  let intervals scale =
    List.concat_map
      (fun n ->
        [
          (scale *. Phases.inactive_start n, scale *. Phases.active_start n, '.');
          (scale *. Phases.active_start n, scale *. Phases.round_end n, 'A');
        ])
      (List.init rounds (fun i -> i + 1))
  in
  print_string
    (Timeline.render ~width:96 ~t_max
       [ { Timeline.name = "R"; intervals = intervals 1.0 } ]);
  Util.note "('.' = inactive/waiting, 'A' = active/searching; lengths 2S(n) each)"

let run_f2 () =
  Util.banner "F2" "Figure 2: structure of the active phase of round n";
  let n = 4 in
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "block";
          Table.column "starts (into active phase)";
          Table.column "duration";
        ]
  in
  let clock = ref 0.0 in
  let block name dur =
    Table.add_row t [ name; Table.fstr !clock; Table.fstr dur ];
    clock := !clock +. dur
  in
  for k = 1 to n do
    block (Printf.sprintf "Search(%d)  [SearchAll fwd]" k)
      (Rvu_search.Timing.search_round_time k)
  done;
  for k = n downto 1 do
    block (Printf.sprintf "Search(%d)  [SearchAllRev]" k)
      (Rvu_search.Timing.search_round_time k)
  done;
  Util.table ~id:"f2" t;
  Util.note "Total %g = 2 S(%d) = %g (Lemma 8)." !clock n (2.0 *. Phases.s n)

let run_f3 () =
  Util.banner "F3" "Figure 3: active/inactive overlap growth under clock asymmetry";
  List.iter
    (fun tau ->
      Util.note "tau = %g:" tau;
      let rows =
        List.map
          (fun k ->
            let o, m = Overlap.max_overlap_with_inactive ~tau ~active_round:k in
            (k, o, m))
          (List.init 11 (fun i -> i + 3))
      in
      print_string
        (Series.bar_chart
           ~title:
             "  max overlap of R's active round k with an R' inactive phase (log bars)"
           (List.map
              (fun (k, o, m) ->
                (Printf.sprintf "k=%2d (R' round %2d)" k m, o))
              rows));
      (* Show the lemma windows that apply at this tau for a few rounds. *)
      let a, t = Bounds.tau_decomposition tau in
      Util.note
        "  decomposition tau = %g * 2^-%d; regime: %s (Lemma %s applies for k >= %d)"
        t a
        (if t <= 2.0 /. 3.0 then "t <= 2/3" else "t > 2/3")
        (if t <= 2.0 /. 3.0 then "9 (Fig 3a)" else "10 (Fig 3b)")
        (2 * (a + 1));
      print_newline ())
    [ 0.55; 0.75 ];
  Util.note
    "Shape check: overlaps grow without bound with the round index (the paper's key";
  Util.note
    "mechanism) — eventually exceeding S(n) for any fixed discovery round n."
