bench/exp_symmetric.ml: Attributes Bounds Equivalent Feasibility Float List Option Rvu_core Rvu_geom Rvu_report Rvu_search Table Util Vec2
