bench/exp_clocks.ml: Attributes Bounds List Phases Rvu_core Rvu_geom Rvu_report Rvu_workload Table Universal Util Vec2
