bench/util.ml: Attributes Feasibility Filename Format Printf Rvu_core Rvu_geom Rvu_report Rvu_search Rvu_sim Sys Unix Vec2
