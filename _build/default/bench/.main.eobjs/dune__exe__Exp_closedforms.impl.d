bench/exp_closedforms.ml: Float List Printf Rvu_core Rvu_report Rvu_search Rvu_trajectory Table Util
