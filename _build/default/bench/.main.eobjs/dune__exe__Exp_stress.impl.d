bench/exp_stress.ml: Attributes Float List Phases Rvu_core Rvu_geom Rvu_report Rvu_sim Table Util Vec2
