bench/exp_search.ml: Float List Rvu_numerics Rvu_report Rvu_search Table Util
