bench/exp_competitive.ml: Attributes Bounds Float List Rvu_core Rvu_geom Rvu_numerics Rvu_report Table Universal Util Vec2
