bench/exp_figures.ml: Bounds List Overlap Phases Printf Rvu_core Rvu_report Rvu_search Series Table Timeline Util
