bench/exp_ablation.ml: Attributes Float List Printf Rvu_core Rvu_geom Rvu_report Rvu_search Table Util Vec2
