bench/main.mli:
