bench/exp_atlas.ml: Atlas Feasibility List Option Rvu_core Rvu_geom Rvu_report Rvu_sim Rvu_workload Table Universal Util Vec2
