bench/exp_baselines.ml: Attributes Feasibility Float Int64 List Rvu_baselines Rvu_core Rvu_geom Rvu_numerics Rvu_report Rvu_search Rvu_sim Table Util Vec2
