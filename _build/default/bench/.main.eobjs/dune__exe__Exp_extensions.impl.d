bench/exp_extensions.ml: Attributes Conformal Float List Printf Rvu_core Rvu_geom Rvu_report Rvu_sim Rvu_trajectory Rvu_workload Table Universal Util Vec2
