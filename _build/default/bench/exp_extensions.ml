(* E8/E9 — the paper's Section 5 future-work directions, made executable.

   E8 — multi-robot gathering: the paper leaves deterministic gathering of
   n > 2 robots with unknown attributes open. We run swarms through the
   universal algorithm and measure when (whether) the swarm diameter drops
   to r. The observation worth publishing: pairwise feasibility does NOT
   empirically yield gathering — pairs meet at different times and drift
   apart again.

   E9 — drifting clocks: robots whose clock rate oscillates around a mean.
   A constant-rate robot with tau != 1 is the paper's Theorem 3 case; here
   we perturb the rate and watch the rendezvous time's stability, probing
   how much of the clock-asymmetry mechanism survives dynamics. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let reference_robot =
  { Rvu_sim.Multi.attributes = Attributes.reference; start = Vec2.zero }

let run_gathering () =
  Util.banner "E8" "Gathering (open problem): swarm diameter under Algorithm 7";
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "swarm";
          Table.column "n"; Table.column "r"; Table.column "outcome";
          Table.column "min diameter seen";
        ]
  in
  let row label robots r horizon =
    match Rvu_sim.Multi.run ~horizon ~r robots with
    | Rvu_sim.Multi.Gathered time, stats ->
        Table.add_row t
          [
            label;
            Table.istr (List.length robots);
            Table.fstr r;
            Printf.sprintf "gathered at %.4g" time;
            Table.fstr stats.Rvu_sim.Multi.min_diameter;
          ]
    | Rvu_sim.Multi.Horizon h, stats ->
        Table.add_row t
          [
            label;
            Table.istr (List.length robots);
            Table.fstr r;
            Printf.sprintf "not by t=%.3g" h;
            Table.fstr stats.Rvu_sim.Multi.min_diameter;
          ]
    | Rvu_sim.Multi.Stream_end _, _ -> failwith "programs are infinite"
  in
  let robot v start = { Rvu_sim.Multi.attributes = Attributes.make ~v (); start } in
  row "pair, v = {1, 2} (baseline)"
    [ reference_robot; robot 2.0 (Vec2.make 2.0 1.0) ]
    0.3 1e6;
  row "twins ride along, v = {1, 2, 2}"
    [ reference_robot; robot 2.0 (Vec2.make 2.0 1.0); robot 2.0 (Vec2.make 2.1 1.0) ]
    0.3 1e6;
  row "three speeds, v = {1, 2, 3}"
    [
      reference_robot;
      robot 2.0 (Vec2.make 1.5 0.5);
      robot 3.0 (Vec2.make (-1.0) 1.0);
    ]
    0.4 2e5;
  row "four speeds, v = {1, 2, 3, 4}"
    [
      reference_robot;
      robot 2.0 (Vec2.make 1.5 0.5);
      robot 3.0 (Vec2.make (-1.0) 1.0);
      robot 4.0 (Vec2.make 0.5 (-1.2));
    ]
    0.4 1e5;
  row "three speeds, huge r = 2.1"
    [
      reference_robot;
      robot 2.0 (Vec2.make 1.5 0.5);
      robot 3.0 (Vec2.make (-1.0) 1.0);
    ]
    2.1 2e5;
  Util.table ~id:"e8" t;

  (* Random-swarm census: does ANY pairwise-feasible random swarm gather? *)
  let rng = Rvu_workload.Rng.create ~seed:7L in
  let trials = 10 and horizon = 5e4 and r = 0.4 in
  let gathered = ref 0 and best_min_diam = ref Float.infinity in
  for _ = 1 to trials do
    let robots =
      Rvu_workload.Scenario.random_swarm ~n:3 rng
      |> List.map (fun (attributes, start) -> { Rvu_sim.Multi.attributes; start })
    in
    match Rvu_sim.Multi.run ~horizon ~r robots with
    | Rvu_sim.Multi.Gathered _, _ -> incr gathered
    | Rvu_sim.Multi.Horizon _, stats ->
        best_min_diam := Float.min !best_min_diam stats.Rvu_sim.Multi.min_diameter
    | Rvu_sim.Multi.Stream_end _, _ -> ()
  done;
  Util.note
    "Random census: %d/%d random pairwise-feasible 3-robot swarms gathered within"
    !gathered trials;
  Util.note
    "t = %g at r = %g (closest non-gathering diameter: %.3g)." horizon r
    !best_min_diam;
  Util.note
    "Pairwise-feasible swarms need not gather: with three distinct speeds every";
  Util.note
    "pair meets at some time, yet the swarm diameter never drops near r on the";
  Util.note
    "tested horizons (it bottoms out around the initial scale even with r eight";
  Util.note
    "times larger than the pairwise experiments use) — empirical support for why";
  Util.note "the paper lists deterministic gathering as an open problem."

let drift_hit ~pattern ~scale ~displacement ~r =
  let program = Universal.program () in
  let s_r =
    Rvu_trajectory.Realize.realize Rvu_trajectory.Realize.identity program
  in
  let frame = Conformal.make ~scale ~offset:displacement () in
  let s_r' = Rvu_trajectory.Drift.realize ~frame pattern program in
  match Rvu_sim.Detector.first_meeting ~horizon:1e8 ~r s_r s_r' with
  | Rvu_sim.Detector.Hit t, _ -> Some t
  | _ -> None

let run_drift () =
  Util.banner "E9" "Drifting clocks: rendezvous under oscillating clock rate";
  let mean = 0.6 and d = Vec2.make 1.5 0.0 and r = 0.4 in
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [ "mean tau"; "amplitude"; "half-period"; "hit time"; "vs constant" ])
  in
  let constant_time =
    match
      drift_hit
        ~pattern:(Rvu_trajectory.Drift.constant mean)
        ~scale:mean ~displacement:d ~r
    with
    | Some t -> t
    | None -> failwith "constant tau = 0.6 must rendezvous"
  in
  List.iter
    (fun (amplitude, half_period) ->
      let pattern =
        Rvu_trajectory.Drift.oscillating ~mean ~amplitude ~half_period
      in
      match drift_hit ~pattern ~scale:mean ~displacement:d ~r with
      | Some time ->
          Table.add_row t
            [
              Table.fstr mean; Table.fstr amplitude; Table.fstr half_period;
              Table.fstr time; Table.fstr (time /. constant_time);
            ]
      | None ->
          Table.add_row t
            [
              Table.fstr mean; Table.fstr amplitude; Table.fstr half_period;
              "no meeting"; "-";
            ])
    [
      (0.0, 1.0); (0.1, 1.0); (0.3, 1.0); (0.5, 1.0);
      (0.3, 0.1); (0.3, 10.0); (0.3, 100.0);
    ];
  Util.table ~id:"e9" t;
  Util.note
    "Rendezvous survives clock dynamics across amplitudes up to 50%% and drift";
  Util.note
    "periods across three decades; hit times stay within a small factor of the";
  Util.note
    "constant-rate case. The paper's symmetry-breaking mechanism needs only the";
  Util.note "long-run rate difference, not a constant rate."

let run () =
  run_gathering ();
  run_drift ()
