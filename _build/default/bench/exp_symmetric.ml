(* E2/E3 — Theorem 2: symmetric clocks, both chirality cases.

   E2 (χ = +1, Lemma 6): rendezvous time under Algorithm 4 across a
   (v, φ) grid, against the μ-scaled bound. The reduction says the pair
   behaves exactly like one robot searching at speed μ = |1 − v·e^{iφ}|.

   E3 (χ = −1, Lemma 7): the mirror case across v, with the displacement on
   the *hardest* bearing (the direction minimising the projection gain
   |T∘ᵀd̂|), against the (1 − v)-scaled worst-case bound. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let d = 2.0
let r = 0.1
let program () = Rvu_search.Algorithm4.program ()

let run_e2 () =
  Util.banner "E2" "Theorem 2, chi = +1: rendezvous vs the mu-scaled bound";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [ "v"; "phi"; "mu"; "measured T"; "thm2 printed"; "thm2 safe"; "T/safe" ])
  in
  let worst_ratio = ref 0.0 in
  List.iter
    (fun v ->
      List.iter
        (fun phi ->
          let attributes = Attributes.make ~v ~phi () in
          if Feasibility.is_feasible attributes then begin
            let time, _ =
              Util.hit_time ~program:(program ()) ~attributes
                ~displacement:(Vec2.of_polar ~radius:d ~angle:1.1)
                ~r ()
            in
            let printed =
              Option.get (Bounds.symmetric_clock_time attributes ~d ~r)
            in
            let safe =
              Option.get (Bounds.symmetric_clock_time_safe attributes ~d ~r)
            in
            worst_ratio := Float.max !worst_ratio (time /. safe);
            assert (time <= safe);
            Table.add_row t
              [
                Table.fstr v; Table.fstr phi;
                Table.fstr (Equivalent.mu attributes);
                Table.fstr time; Table.fstr printed; Table.fstr safe;
                Table.fstr (time /. safe);
              ]
          end)
        [ 0.0; Float.pi /. 3.0; Float.pi; 5.0 *. Float.pi /. 3.0 ])
    [ 0.25; 0.5; 0.8; 1.0; 1.25; 2.0; 4.0 ];
  Util.table ~id:"e2" t;
  Util.note "Largest measured/safe-bound ratio: %.4f (bound holds everywhere)."
    !worst_ratio;
  Util.note
    "Shape check: the bound scales as 1/mu — smallest mu rows (v near 1, phi near 0) dominate."

(* The hardest displacement bearing: the analytic smallest singular
   direction of T∘ (see Equivalent.worst_direction). *)
let hardest_bearing attributes =
  Vec2.angle_of (Equivalent.worst_direction attributes)

let run_e3 () =
  Util.banner "E3" "Theorem 2, chi = -1: mirror case on the hardest bearing";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [
             "v"; "phi"; "hard bearing"; "gain |T'd|"; "measured T";
             "thm2 printed"; "thm2 safe"; "T/safe";
           ])
  in
  List.iter
    (fun v ->
      List.iter
        (fun phi ->
          let attributes =
            Attributes.make ~v ~phi ~chi:Attributes.Opposite ()
          in
          let bearing = hardest_bearing attributes in
          let gain =
            Equivalent.projection_gain attributes
              ~dhat:(Vec2.of_polar ~radius:1.0 ~angle:bearing)
          in
          let time, _ =
            Util.hit_time ~program:(program ()) ~attributes
              ~displacement:(Vec2.of_polar ~radius:d ~angle:bearing)
              ~r ()
          in
          let printed = Option.get (Bounds.symmetric_clock_time attributes ~d ~r) in
          let safe =
            Option.get (Bounds.symmetric_clock_time_safe attributes ~d ~r)
          in
          assert (time <= safe);
          Table.add_row t
            [
              Table.fstr v; Table.fstr phi; Table.fstr bearing;
              Table.fstr gain; Table.fstr time; Table.fstr printed;
              Table.fstr safe; Table.fstr (time /. safe);
            ])
        [ 0.0; Float.pi /. 2.0; Float.pi ])
    [ 0.3; 0.5; 0.7; 0.85 ];
  Util.table ~id:"e3" t;
  Util.note
    "Shape check: as v -> 1 the worst-case gain (1 - v^2)/mu collapses and the bound";
  Util.note
    "blows up — the crossover into infeasibility at v = 1 (Theorem 4 frontier)."
