(* Ablations of the simulator's design choices (DESIGN.md section 5).

   A1 — closed-form fast path vs pure Lipschitz detection: hit times must
        agree to the detector's resolution; only wall-clock may differ.
   A2 — detector resolution: the reported hit time must be stable across
        six orders of magnitude of resolution.
   A3 — lazy vs eager schedules: the segment counts that make eager
        materialisation of Algorithm 7 impossible. *)

open Rvu_geom
open Rvu_core
open Rvu_report

let instance_cases =
  [
    ("speeds v=2", Attributes.make ~v:2.0 (), Vec2.make 2.0 1.0, 0.1);
    ("rotation phi=2pi/3", Attributes.make ~phi:(2.0 *. Float.pi /. 3.0) (),
     Vec2.make 1.4 0.3, 0.15);
    ("mirror v=0.6", Attributes.make ~v:0.6 ~phi:1.0 ~chi:Attributes.Opposite (),
     Vec2.make 1.8 (-0.4), 0.2);
  ]

let run_a1 () =
  Util.banner "A1" "Ablation: closed-form fast path vs pure Lipschitz detector";
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "instance";
          Table.column "hit (fast path)";
          Table.column "hit (lipschitz)";
          Table.column "|delta t|";
          Table.column "wall fast (s)";
          Table.column "wall lipschitz (s)";
          Table.column "speedup";
        ]
  in
  List.iter
    (fun (name, attributes, displacement, r) ->
      let program = Rvu_search.Algorithm4.program () in
      let (t_fast, _), wall_fast =
        Util.wall_clock (fun () ->
            Util.hit_time ~closed_forms:true ~program ~attributes ~displacement
              ~r ())
      in
      let (t_slow, _), wall_slow =
        Util.wall_clock (fun () ->
            Util.hit_time ~closed_forms:false ~program ~attributes
              ~displacement ~r ())
      in
      assert (Float.abs (t_fast -. t_slow) < 1e-5);
      Table.add_row t
        [
          name; Table.fstr t_fast; Table.fstr t_slow;
          Printf.sprintf "%.1e" (Float.abs (t_fast -. t_slow));
          Table.fstr wall_fast; Table.fstr wall_slow;
          Table.fstr (wall_slow /. Float.max 1e-9 wall_fast);
        ])
    instance_cases;
  Util.table ~id:"a1" t;
  Util.note "Hit times agree to <= 1e-5: correctness does not depend on the fast path."

let run_a2 () =
  Util.banner "A2" "Ablation: detector resolution sensitivity";
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "instance";
          Table.column "resolution";
          Table.column "hit time";
          Table.column "drift vs 1e-9";
        ]
  in
  List.iter
    (fun (name, attributes, displacement, r) ->
      let program = Rvu_search.Algorithm4.program () in
      let hit resolution =
        fst (Util.hit_time ~resolution ~program ~attributes ~displacement ~r ())
      in
      let reference = hit 1e-9 in
      List.iter
        (fun resolution ->
          let time = hit resolution in
          assert (Float.abs (time -. reference) < 0.05);
          Table.add_row t
            [
              name;
              Printf.sprintf "%.0e" resolution;
              Table.fstr time;
              Printf.sprintf "%.2e" (Float.abs (time -. reference));
            ])
        [ 1e-3; 1e-5; 1e-7; 1e-9 ])
    instance_cases;
  Util.table ~id:"a2" t;
  Util.note "Hit times drift < 0.05 time units across six decades of resolution."

let run_a3 () =
  Util.banner "A3" "Ablation: why schedules are lazy (eager materialisation cost)";
  let t =
    Table.create
      ~columns:
        (List.map Table.column
           [ "round n"; "segments in round"; "cumulative"; "eager est. (GiB)" ])
  in
  let cumulative = ref 0.0 in
  List.iter
    (fun n ->
      (* One round of Algorithm 7 = wait + SearchAll(n) + SearchAllRev(n). *)
      let per_round =
        1.0 +. (2.0 *. float_of_int (Rvu_search.Timing.search_all_segments n))
      in
      cumulative := !cumulative +. per_round;
      (* ~64 bytes per materialised segment record (tag + floats + boxing). *)
      let gib = !cumulative *. 64.0 /. (1024.0 ** 3.0) in
      Table.add_row t
        [
          Table.istr n;
          Printf.sprintf "%.3g" per_round;
          Printf.sprintf "%.3g" !cumulative;
          Printf.sprintf "%.3g" gib;
        ])
    (List.init 16 (fun i -> i + 1));
  Util.table ~id:"a3" t;
  Util.note
    "Eagerly materialising through round 14 would need ~100 GiB; the lazy stream";
  Util.note "holds O(1) segments in memory regardless of depth."

let run () =
  run_a1 ();
  run_a2 ();
  run_a3 ()
