(* E6 — Lemma 2, eq. (1) and Lemma 8: every closed form against the
   generators, to float precision. This is the "the algebra in the paper is
   the algebra in the code" experiment. *)

open Rvu_report

let rel_err a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b)

let run () =
  Util.banner "E6" "Closed forms vs generated trajectories (exact agreement)";
  let t =
    Table.create
      ~columns:
        [
          Table.column ~align:Table.Left "quantity";
          Table.column "closed form";
          Table.column "generator";
          Table.column "rel err";
        ]
  in
  let worst = ref 0.0 in
  let row name closed measured =
    let e = rel_err measured closed in
    worst := Float.max !worst e;
    t |> fun t ->
    Table.add_row t
      [ name; Table.fstr_precise closed; Table.fstr_precise measured;
        Printf.sprintf "%.1e" e ]
  in
  List.iter
    (fun delta ->
      row
        (Printf.sprintf "SearchCircle(%g) time" delta)
        (Rvu_search.Timing.search_circle_time delta)
        (Rvu_trajectory.Program.duration (Rvu_search.Procedures.search_circle delta)))
    [ 0.125; 1.0; 7.5 ];
  List.iter
    (fun (inner, outer, rho) ->
      row
        (Printf.sprintf "SearchAnnulus(%g,%g,%g) time" inner outer rho)
        (Rvu_search.Timing.search_annulus_time ~inner ~outer ~rho)
        (Rvu_trajectory.Program.duration
           (Rvu_search.Procedures.search_annulus ~inner ~outer ~rho)))
    [ (1.0, 2.0, 0.25); (0.5, 4.0, 0.05) ];
  for k = 1 to 8 do
    row
      (Printf.sprintf "Search(%d) time (Lemma 2)" k)
      (Rvu_search.Timing.search_round_time k)
      (Rvu_trajectory.Program.duration (Rvu_search.Procedures.search_round k))
  done;
  for n = 1 to 8 do
    row
      (Printf.sprintf "S(%d) = SearchAll time (eq. 1)" n)
      (Rvu_search.Timing.search_all_time n)
      (Rvu_trajectory.Program.duration (Rvu_search.Algorithm4.search_all n))
  done;
  for n = 1 to 7 do
    row
      (Printf.sprintf "Algorithm 7 round %d duration (4S)" n)
      (Rvu_core.Phases.round_duration n)
      (Rvu_trajectory.Program.duration (Rvu_core.Algorithm7.round_program n))
  done;
  for n = 1 to 7 do
    row
      (Printf.sprintf "I(%d+1): completing %d rounds (Lemma 8)" n n)
      (Rvu_core.Phases.time_to_complete_rounds n)
      (Rvu_trajectory.Program.duration (Rvu_core.Algorithm7.prefix ~rounds:n))
  done;
  Util.table ~id:"e6-times" t;
  assert (!worst < 1e-9);
  Util.note "Worst relative error: %.2e (pure float noise)." !worst;

  (* Segment counts — the Θ(4ᵏ) growth that forces lazy programs. *)
  let t2 =
    Table.create
      ~columns:
        (List.map Table.column
           [ "k"; "Search(k) segments (formula)"; "(generator)"; "SearchAll(k)" ])
  in
  for k = 1 to 8 do
    Table.add_row t2
      [
        Table.istr k;
        Table.istr (Rvu_search.Timing.search_round_segments k);
        Table.istr
          (Rvu_trajectory.Program.segment_count (Rvu_search.Procedures.search_round k));
        Table.istr (Rvu_search.Timing.search_all_segments k);
      ]
  done;
  Util.table ~id:"e6-segments" t2;
  Util.note
    "Segment counts grow as Theta(4^k): round 14 alone would hold ~1.6e9 segments,";
  Util.note
    "which is why programs are lazy Seq.t generators and never materialised."
