(* Feasibility atlas: Theorem 4 as a table.

   Walks every qualitative corner of the attribute space, prints the
   classifier verdict, and backs each verdict empirically: feasible cells
   are simulated until rendezvous; infeasible cells are run to a horizon and
   certified separated on their adversarial bearing.

   Run with: dune exec examples/feasibility_atlas.exe *)

open Rvu_geom
open Rvu_core
open Rvu_workload

let describe = function
  | Feasibility.Feasible Feasibility.Different_clocks -> "feasible (clocks)"
  | Feasibility.Feasible Feasibility.Different_speeds -> "feasible (speeds)"
  | Feasibility.Feasible Feasibility.Rotated_same_chirality ->
      "feasible (rotation)"
  | Feasibility.Infeasible -> "infeasible"

let () =
  let d = 1.5 and r = 0.4 in
  Format.printf
    "Theorem 4 atlas: every attribute-space corner, verdict vs simulation (d=%g, r=%g).@.@."
    d r;
  let t =
    Rvu_report.Table.create
      ~columns:
        [
          Rvu_report.Table.column ~align:Rvu_report.Table.Left "configuration";
          Rvu_report.Table.column ~align:Rvu_report.Table.Left "theorem 4";
          Rvu_report.Table.column ~align:Rvu_report.Table.Left "simulation";
        ]
  in
  List.iter
    (fun cell ->
      let verdict = Feasibility.classify cell.Atlas.attributes in
      let empirical =
        match verdict with
        | Feasibility.Feasible _ -> begin
            let inst =
              Rvu_sim.Engine.instance ~attributes:cell.Atlas.attributes
                ~displacement:(Vec2.of_polar ~radius:d ~angle:0.9)
                ~r
            in
            match (Rvu_sim.Engine.run ~horizon:1e9 inst).Rvu_sim.Engine.outcome with
            | Rvu_sim.Detector.Hit time -> Printf.sprintf "met at t=%.4g" time
            | _ -> "NO MEETING (unexpected!)"
          end
        | Feasibility.Infeasible -> begin
            let dhat =
              Option.get (Feasibility.adversarial_direction cell.Atlas.attributes)
            in
            let inst =
              Rvu_sim.Engine.instance ~attributes:cell.Atlas.attributes
                ~displacement:(Vec2.scale d dhat) ~r
            in
            let sep =
              Rvu_sim.Engine.separation_certificate ~resolution:2e-2
                ~horizon:2000.0 inst
            in
            Printf.sprintf "separated >= %.3g up to t=2000" sep
          end
      in
      Rvu_report.Table.add_row t [ cell.Atlas.label; describe verdict; empirical ])
    Atlas.cells;
  Rvu_report.Table.print t;
  print_newline ();
  Format.printf
    "Near the infeasibility frontier the bounds blow up (epsilon-probes):@.";
  let t2 =
    Rvu_report.Table.create
      ~columns:
        [
          Rvu_report.Table.column ~align:Rvu_report.Table.Left "probe";
          Rvu_report.Table.column "guaranteed round";
          Rvu_report.Table.column "guaranteed time";
        ]
  in
  List.iter
    (fun eps ->
      List.iter
        (fun cell ->
          let g = Universal.guarantee cell.Atlas.attributes ~d ~r in
          Rvu_report.Table.add_row t2
            [
              cell.Atlas.label;
              (match g.Universal.round with
              | Some k -> Rvu_report.Table.istr k
              | None -> "-");
              (match g.Universal.time with
              | Some b -> Rvu_report.Table.fstr b
              | None -> "-");
            ])
        (Atlas.boundary_cells ~epsilon:eps))
    [ 0.1; 0.01 ];
  Rvu_report.Table.print t2
