(* Search and rescue: the Section 2 search problem on its own.

   A rescue drone with limited visibility must locate a stationary casualty
   at an unknown distance. The drone runs the paper's Algorithm 4 (doubling
   annuli); we show the measured discovery time against the analytic
   predictions for a spread of distances.

   Run with: dune exec examples/search_and_rescue.exe *)

open Rvu_geom
open Rvu_search

let locate ~d ~r ~bearing =
  let target = Vec2.of_polar ~radius:d ~angle:bearing in
  match
    Rvu_sim.Search_engine.run ~program:(Algorithm4.program ()) ~target ~r ()
  with
  | Rvu_sim.Search_engine.Found t, stats ->
      (t, stats.Rvu_sim.Search_engine.segments)
  | _ -> failwith "Algorithm 4 always finds a reachable target"

let () =
  let r = 0.05 in
  Format.printf
    "Searching for a stationary target, visibility r = %g, Algorithm 4.@.@."
    r;
  let t =
    Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [
             "distance d"; "d^2/r"; "predicted round"; "found at";
             "round bound (Lemma 2)"; "safe bound (Thm 1')"; "time/bound";
           ])
  in
  List.iter
    (fun d ->
      let time, _segments = locate ~d ~r ~bearing:(0.7 *. d) in
      let round = Predict.discovery_round ~d ~r in
      let round_time = Bounds.time_through_round round in
      let safe = Bounds.search_time_safe ~d ~r in
      Rvu_report.Table.add_row t
        [
          Rvu_report.Table.fstr d;
          Rvu_report.Table.fstr (d *. d /. r);
          Rvu_report.Table.istr round;
          Rvu_report.Table.fstr time;
          Rvu_report.Table.fstr round_time;
          Rvu_report.Table.fstr safe;
          Rvu_report.Table.fstr (time /. safe);
        ])
    [ 0.5; 1.0; 2.0; 3.0; 4.5; 6.0 ];
  Rvu_report.Table.print t;
  print_newline ();
  Format.printf
    "The drone never overshoots the Lemma 2 round-completion time, and the@.";
  Format.printf
    "measured-to-bound ratio shrinks as d^2/r grows - the bound's log factor@.";
  Format.printf "is pessimistic for easy instances.@.";

  (* Draw the first two rounds of the doubling-annuli sweep. *)
  let segs =
    List.of_seq
      (Rvu_trajectory.Realize.realize Rvu_trajectory.Realize.identity
         (Algorithm4.search_all 2))
  in
  let target = Vec2.of_polar ~radius:1.4 ~angle:0.9 in
  Rvu_report.Svg.write ~path:"search_rounds.svg"
    [
      Rvu_report.Svg.of_timed ~color:"#1f77b4" segs;
      Rvu_report.Svg.Disc { center = (target.Vec2.x, target.Vec2.y); radius = 0.06; color = "#d62728" };
      Rvu_report.Svg.Ring { center = (target.Vec2.x, target.Vec2.y); radius = r; color = "#d62728" };
    ];
  Format.printf "@.Figure: the Search(1)+Search(2) annuli written to search_rounds.svg@."
