(* Mirror twins: why chirality alone cannot break symmetry.

   Two robots with equal speeds and clocks but opposite chiralities execute
   the same program as mirror images of each other. The induced relative
   trajectory S(t) - S'(t) is trapped on a single line (the normal of the
   mirror axis), so a displacement along the mirror axis is never reduced:
   the pair is infeasible no matter the algorithm (Theorem 4).

   This example makes the geometry visible: it samples both trajectories,
   projects the relative motion onto the mirror axis and its normal, and
   shows the axis component never moving.

   Run with: dune exec examples/mirror_twins.exe *)

open Rvu_geom
open Rvu_core

let phi = Float.pi /. 3.0

let () =
  let attributes = Attributes.make ~phi ~chi:Attributes.Opposite () in
  Format.printf "Mirror twins: %a@." Attributes.pp attributes;
  let axis_angle = phi /. 2.0 in
  let axis = Vec2.of_polar ~radius:1.0 ~angle:axis_angle in
  let normal = Vec2.perp axis in
  Format.printf
    "Mirror axis at angle phi/2 = %g; Theorem 4 verdict: %s.@.@." axis_angle
    (if Feasibility.is_feasible attributes then "feasible" else "infeasible");

  (* Sample the relative trajectory during a few rounds of Algorithm 7. *)
  let d = Vec2.scale 2.0 axis in
  let program = Universal.program () in
  let times = List.init 12 (fun i -> float_of_int (i * 40)) in
  let s_r = Rvu_sim.Trace.sample Rvu_trajectory.Realize.identity program ~times in
  let s_r' =
    Rvu_sim.Trace.sample (Frame.clocked attributes ~displacement:d) program ~times
  in
  let t =
    Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ "time"; "axis component"; "normal component"; "distance" ])
  in
  List.iter2
    (fun (a : Rvu_sim.Trace.sample) (b : Rvu_sim.Trace.sample) ->
      let rel = Vec2.sub b.Rvu_sim.Trace.position a.Rvu_sim.Trace.position in
      Rvu_report.Table.add_row t
        [
          Rvu_report.Table.fstr a.Rvu_sim.Trace.time;
          Rvu_report.Table.fstr (Vec2.dot rel axis);
          Rvu_report.Table.fstr (Vec2.dot rel normal);
          Rvu_report.Table.fstr (Vec2.norm rel);
        ])
    s_r s_r';
  Rvu_report.Table.print t;
  print_newline ();
  Format.printf
    "The axis component stays pinned at %g = d: the robots can wander in the@."
    (Vec2.norm d);
  Format.printf
    "normal direction but never close the axis gap, so distance >= d always.@.";

  (* Contrast: give one robot a 10%% speed edge and the spell breaks. *)
  let fixed = Attributes.make ~v:0.9 ~phi ~chi:Attributes.Opposite () in
  let inst =
    Rvu_sim.Engine.instance ~attributes:fixed ~displacement:d ~r:0.25
  in
  match (Rvu_sim.Engine.run ~horizon:1e8 inst).Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit time ->
      Format.printf
        "@.With v = 0.9 (speeds differ) the same geometry meets at t = %.2f.@."
        time
  | _ -> Format.printf "@.unexpected: v=0.9 case did not meet@."
