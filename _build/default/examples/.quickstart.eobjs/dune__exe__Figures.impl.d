examples/figures.ml: Attributes Float Format Frame List Rvu_baselines Rvu_core Rvu_geom Rvu_report Rvu_search Rvu_sim Rvu_trajectory Seq Universal Vec2
