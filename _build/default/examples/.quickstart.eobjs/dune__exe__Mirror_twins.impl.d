examples/mirror_twins.ml: Attributes Feasibility Float Format Frame List Rvu_core Rvu_geom Rvu_report Rvu_sim Rvu_trajectory Universal Vec2
