examples/feasibility_atlas.ml: Atlas Feasibility Format List Option Printf Rvu_core Rvu_geom Rvu_report Rvu_sim Rvu_workload Universal Vec2
