examples/quickstart.mli:
