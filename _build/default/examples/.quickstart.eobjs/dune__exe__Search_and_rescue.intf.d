examples/search_and_rescue.mli:
