examples/drifting_clocks.ml: Conformal Drift Float Format List Realize Rvu_core Rvu_geom Rvu_report Rvu_sim Rvu_trajectory Vec2
