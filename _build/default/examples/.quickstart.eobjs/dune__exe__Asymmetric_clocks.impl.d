examples/asymmetric_clocks.ml: Attributes Format List Overlap Phases Printf Rvu_core Rvu_geom Rvu_report Rvu_sim Universal Vec2
