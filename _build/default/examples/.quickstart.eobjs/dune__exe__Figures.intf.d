examples/figures.mli:
