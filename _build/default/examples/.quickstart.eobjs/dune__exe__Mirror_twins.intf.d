examples/mirror_twins.mli:
