examples/search_and_rescue.ml: Algorithm4 Bounds Format List Predict Rvu_geom Rvu_report Rvu_search Rvu_sim Rvu_trajectory Vec2
