examples/quickstart.ml: Attributes Feasibility Format List Printf Rvu_core Rvu_geom Rvu_report Rvu_sim Universal Vec2
