examples/swarm_gathering.ml: Array Attributes Float Format Frame List Printf Rvu_core Rvu_geom Rvu_report Rvu_sim Universal Vec2
