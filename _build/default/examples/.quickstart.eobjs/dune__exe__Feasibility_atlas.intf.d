examples/feasibility_atlas.mli:
