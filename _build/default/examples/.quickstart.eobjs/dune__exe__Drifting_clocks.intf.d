examples/drifting_clocks.mli:
