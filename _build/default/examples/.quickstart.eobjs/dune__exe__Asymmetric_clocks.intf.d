examples/asymmetric_clocks.mli:
