examples/swarm_gathering.mli:
