(* Drifting clocks: rendezvous survives dynamic attributes.

   The paper's model fixes R''s clock rate at a constant tau. This example
   lets the rate oscillate (spending equal local time at tau(1-a) and
   tau(1+a)) and shows that the universal algorithm still brings the robots
   together, with meeting times close to the constant-rate case — the
   symmetry break only needs a long-run rate difference.

   Run with: dune exec examples/drifting_clocks.exe *)

open Rvu_geom
open Rvu_trajectory

let mean = 0.6
let displacement = Vec2.make 1.5 0.0
let r = 0.4

let hit pattern =
  let program = Rvu_core.Universal.program () in
  let s_r = Realize.realize Realize.identity program in
  let frame = Conformal.make ~scale:mean ~offset:displacement () in
  let s_r' = Drift.realize ~frame pattern program in
  match Rvu_sim.Detector.first_meeting ~horizon:1e8 ~r s_r s_r' with
  | Rvu_sim.Detector.Hit t, _ -> t
  | _ -> Float.nan

let () =
  Format.printf
    "R' clock rate oscillates around mean tau = %g; R is the reference.@.@."
    mean;
  let constant = hit (Drift.constant mean) in
  Format.printf "constant rate: rendezvous at t = %.2f@.@." constant;
  let t =
    Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ "amplitude"; "half-period"; "rendezvous"; "vs constant" ])
  in
  List.iter
    (fun (amplitude, half_period) ->
      let time = hit (Drift.oscillating ~mean ~amplitude ~half_period) in
      Rvu_report.Table.add_row t
        [
          Rvu_report.Table.fstr amplitude;
          Rvu_report.Table.fstr half_period;
          Rvu_report.Table.fstr time;
          Rvu_report.Table.fstr (time /. constant);
        ])
    [ (0.1, 1.0); (0.3, 1.0); (0.5, 1.0); (0.8, 1.0); (0.3, 0.1); (0.3, 50.0) ];
  Rvu_report.Table.print t;
  Format.printf
    "@.Even 80%% swings in the clock rate barely move the meeting time: what@.";
  Format.printf
    "breaks the symmetry is the accumulated clock skew, which depends only on@.";
  Format.printf "the mean rate.@."
