(* Swarm gathering: probing the paper's open problem.

   Section 5 of the paper asks whether deterministic GATHERING of many
   robots with unknown attributes is solvable. This example runs a
   three-robot swarm through the universal algorithm and watches the swarm
   diameter: every pair of robots is individually feasible (all speeds
   differ), yet the three are never simultaneously close — pairwise
   symmetry breaking does not compose.

   Run with: dune exec examples/swarm_gathering.exe *)

open Rvu_geom
open Rvu_core

let () =
  let robots =
    [
      { Rvu_sim.Multi.attributes = Attributes.reference; start = Vec2.zero };
      {
        Rvu_sim.Multi.attributes = Attributes.make ~v:2.0 ();
        start = Vec2.make 1.5 0.5;
      };
      {
        Rvu_sim.Multi.attributes = Attributes.make ~v:3.0 ();
        start = Vec2.make (-1.0) 1.0;
      };
    ]
  in
  Format.printf
    "Three robots, speeds {1, 2, 3} - every pair is feasible by Theorem 4.@.";
  List.iteri
    (fun i r ->
      Format.printf "  robot %d: %a at %a@." i Attributes.pp
        r.Rvu_sim.Multi.attributes Vec2.pp r.Rvu_sim.Multi.start)
    robots;

  (* Swarm diameter over time. *)
  let clocked =
    robots
    |> List.map (fun r ->
           Frame.clocked r.Rvu_sim.Multi.attributes
             ~displacement:r.Rvu_sim.Multi.start)
    |> Array.of_list
  in
  let program = Universal.program () in
  print_newline ();
  print_string
    (Rvu_report.Series.bar_chart ~log_scale:false
       ~title:"swarm diameter over time (universal algorithm)"
       (List.map
          (fun t ->
            ( Printf.sprintf "t=%6.0f" t,
              Rvu_sim.Multi.diameter_at clocked program t ))
          [ 0.; 50.; 100.; 200.; 400.; 800.; 1600.; 3200.; 6400.; 12800. ]));
  print_newline ();

  (* The verdicts: pairs meet, the swarm does not. *)
  let pair a b r =
    (* A two-robot swarm: gathering = pairwise rendezvous, and Multi handles
       arbitrary attribute pairs (each robot realises its own frame). *)
    match Rvu_sim.Multi.run ~horizon:1e6 ~r [ a; b ] with
    | Rvu_sim.Multi.Gathered t, _ -> t
    | _ -> Float.nan
  in
  (match robots with
  | [ a; b; c ] ->
      Format.printf "pairwise first meetings (r = 0.4):@.";
      Format.printf "  robots 0-1 meet at t = %.1f@." (pair a b 0.4);
      Format.printf "  robots 0-2 meet at t = %.1f@." (pair a c 0.4);
      Format.printf "  robots 1-2 meet at t = %.1f@." (pair b c 0.4)
  | _ -> ());
  (match Rvu_sim.Multi.run ~horizon:2e5 ~r:0.4 robots with
  | Rvu_sim.Multi.Gathered t, _ ->
      Format.printf "swarm gathered at t = %.1f!@." t
  | Rvu_sim.Multi.Horizon h, stats ->
      Format.printf
        "swarm NOT gathered by t = %g (diameter never below %.3f >> r = 0.4)@."
        h stats.Rvu_sim.Multi.min_diameter
  | Rvu_sim.Multi.Stream_end _, _ -> ());
  Format.printf
    "@.Pairwise rendezvous does not compose into gathering - the open problem stands.@."
