(* Quickstart: two robots that differ only in speed rendezvous using the
   universal algorithm, without knowing *which* attribute differs.

   Run with: dune exec examples/quickstart.exe *)

open Rvu_geom
open Rvu_core

let () =
  (* Robot R is the reference frame. Robot R' is twice as fast, starts 2.24
     units away at a diagonal, and both can see to distance 0.1. Neither
     robot knows any of this. *)
  let attributes = Attributes.make ~v:2.0 () in
  let displacement = Vec2.make 2.0 1.0 in
  let r = 0.1 in
  let inst = Rvu_sim.Engine.instance ~attributes ~displacement ~r in

  Format.printf "Instance: R' has attributes %a,@ d = %g, r = %g@."
    Attributes.pp attributes (Vec2.norm displacement) r;

  (* Both robots run the same universal program (Algorithm 7). *)
  let res = Rvu_sim.Engine.run ~horizon:1e7 inst in

  (match Feasibility.classify attributes with
  | Feasibility.Feasible reason ->
      Format.printf "Theorem 4 says rendezvous is feasible (%s).@."
        (match reason with
        | Feasibility.Different_clocks -> "different clocks"
        | Feasibility.Different_speeds -> "different speeds"
        | Feasibility.Rotated_same_chirality -> "rotated compasses")
  | Feasibility.Infeasible -> Format.printf "Theorem 4 says infeasible.@.");

  (match res.Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t ->
      Format.printf "Rendezvous at global time %.2f.@." t;
      (match (res.Rvu_sim.Engine.bound.Universal.time,
              res.Rvu_sim.Engine.bound.Universal.round) with
      | Some bound, Some round ->
          Format.printf
            "Analytic guarantee: by the end of schedule round %d (time %.3g); measured/bound = %.4f.@."
            round bound (t /. bound)
      | _ -> ())
  | Rvu_sim.Detector.Horizon h ->
      Format.printf "No rendezvous before the horizon %g.@." h
  | Rvu_sim.Detector.Stream_end t ->
      Format.printf "Program ended at %g without a meeting.@." t);

  (* Show how the inter-robot distance evolves early in the run. *)
  let times = List.init 13 (fun i -> float_of_int i *. 25.0) in
  let rows =
    Rvu_sim.Trace.pair_distances attributes ~displacement
      (Universal.program ()) ~times
  in
  print_newline ();
  print_string
    (Rvu_report.Series.bar_chart ~log_scale:false
       ~title:"inter-robot distance over the first 300 time units"
       (List.map (fun (t, d) -> (Printf.sprintf "t=%5.0f" t, d)) rows))
