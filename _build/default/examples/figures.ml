(* Figure gallery: every picture this repository can draw, in one run.

   Writes four standalone SVGs into the current directory:
     fig_search_annuli.svg   the Search(1)+Search(2) doubling annuli
     fig_rendezvous.svg      two robots (v = 2) meeting under Algorithm 7
     fig_mirror_twins.svg    mirror twins tracing reflected paths forever
     fig_spiral.svg          the know-your-r spiral baseline vs the annuli

   Run with: dune exec examples/figures.exe *)

open Rvu_geom
open Rvu_core

let take_until_time t_end stream =
  List.of_seq
    (Seq.take_while
       (fun (seg : Rvu_trajectory.Timed.t) -> seg.Rvu_trajectory.Timed.t0 < t_end)
       stream)

let realize ?(attributes = Attributes.reference) ?(displacement = Vec2.zero)
    program =
  Rvu_trajectory.Realize.realize (Frame.clocked attributes ~displacement) program

let marker ?(radius = 0.08) (p : Vec2.t) color =
  Rvu_report.Svg.Disc { center = (p.Vec2.x, p.Vec2.y); radius; color }

let save name shapes =
  Rvu_report.Svg.write ~path:name shapes;
  Format.printf "  wrote %s@." name

let () =
  Format.printf "Rendering the gallery:@.";

  (* 1. The doubling annuli of the search algorithm. *)
  let annuli =
    List.of_seq (realize (Rvu_search.Algorithm4.search_all 2))
  in
  save "fig_search_annuli.svg"
    [
      Rvu_report.Svg.of_timed ~color:"#1f77b4" annuli;
      marker Vec2.zero "#2ca02c";
    ];

  (* 2. A rendezvous: R (blue) slow, R' (red) fast, meeting point green. *)
  let attributes = Attributes.make ~v:2.0 () in
  let displacement = Vec2.make 2.0 1.0 in
  let program = Universal.program () in
  let inst = Rvu_sim.Engine.instance ~attributes ~displacement ~r:0.2 in
  (match (Rvu_sim.Engine.run ~horizon:1e6 inst).Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t ->
      let meet =
        Rvu_trajectory.Realize.position Rvu_trajectory.Realize.identity program t
      in
      save "fig_rendezvous.svg"
        [
          Rvu_report.Svg.of_timed ~color:"#1f77b4"
            (take_until_time t (realize program));
          Rvu_report.Svg.of_timed ~color:"#d62728"
            (take_until_time t (realize ~attributes ~displacement program));
          marker Vec2.zero "#1f77b4";
          marker displacement "#d62728";
          marker meet "#2ca02c";
          Rvu_report.Svg.Ring
            { center = (meet.Vec2.x, meet.Vec2.y); radius = 0.2; color = "#2ca02c" };
        ]
  | _ -> Format.printf "  (rendezvous figure skipped: no meeting?)@.");

  (* 3. Mirror twins: the reflected geometry that never closes the gap. *)
  let mirror = Attributes.make ~phi:(Float.pi /. 3.0) ~chi:Attributes.Opposite () in
  let axis = Vec2.of_polar ~radius:2.0 ~angle:(Float.pi /. 6.0) in
  let t_end = Rvu_search.Timing.search_all_time 2 in
  save "fig_mirror_twins.svg"
    [
      Rvu_report.Svg.of_timed ~color:"#1f77b4"
        (take_until_time t_end (realize (Universal.program ())));
      Rvu_report.Svg.of_timed ~color:"#d62728"
        (take_until_time t_end
           (realize ~attributes:mirror ~displacement:axis (Universal.program ())));
      marker Vec2.zero "#1f77b4";
      marker axis "#d62728";
    ];

  (* 4. The spiral baseline over the same footprint as the annuli. *)
  let spiral_segs =
    let stream = realize (Rvu_baselines.Spiral.program ~rho:0.15 ()) in
    List.of_seq
      (Seq.take_while
         (fun (seg : Rvu_trajectory.Timed.t) ->
           Vec2.norm (Rvu_trajectory.Timed.position seg seg.Rvu_trajectory.Timed.t0)
           < 2.2)
         stream)
  in
  save "fig_spiral.svg"
    [
      Rvu_report.Svg.of_timed ~color:"#9467bd" spiral_segs;
      marker Vec2.zero "#2ca02c";
    ];
  Format.printf "Open the .svg files in any browser.@."
