(* Asymmetric clocks: the Section 4 story, visualised.

   Two robots with identical speeds and compasses but different clock rates
   run Algorithm 7. The example draws the phase schedules of both robots
   (the paper's Figures 1 and 3), shows the growing overlap between R's
   active phases and R''s inactive phases, and then actually simulates the
   rendezvous.

   Run with: dune exec examples/asymmetric_clocks.exe *)

open Rvu_geom
open Rvu_core

let tau = 0.6

let () =
  Format.printf
    "Robots with identical speed/compass but clock ratio tau = %g.@.@." tau;

  (* Figure 1 / Figure 3: the two phase schedules on a shared timeline. *)
  let rounds = 7 in
  let t_max = Phases.round_end rounds in
  let lane name scale =
    {
      Rvu_report.Timeline.name;
      intervals =
        List.concat_map
          (fun n ->
            [
              (scale *. Phases.inactive_start n, scale *. Phases.active_start n, '.');
              (scale *. Phases.active_start n, scale *. Phases.round_end n, 'A');
            ])
          (List.init rounds (fun i -> i + 1));
    }
  in
  print_string "Phase schedules ('A' = active, '.' = inactive):\n";
  print_string
    (Rvu_report.Timeline.render ~width:96 ~t_max
       [ lane "R  (tau=1)" 1.0; lane (Printf.sprintf "R' (tau=%g)" tau) tau ]);
  print_newline ();

  (* The overlap series behind Lemmas 9/10: how long R gets to search while
     R' stands still, per round. *)
  print_string
    (Rvu_report.Series.bar_chart
       ~title:"max overlap of R's active phase with an R' inactive phase"
       (List.map
          (fun k ->
            let o, m = Overlap.max_overlap_with_inactive ~tau ~active_round:k in
            (Printf.sprintf "round %2d (vs R' round %d)" k m, o))
          (List.init 8 (fun i -> i + 3))));
  print_newline ();

  (* And the real thing: simulate until they meet. *)
  let attributes = Attributes.make ~tau () in
  let inst =
    Rvu_sim.Engine.instance ~attributes ~displacement:(Vec2.make 1.5 0.9)
      ~r:0.3
  in
  let res = Rvu_sim.Engine.run ~horizon:1e9 inst in
  match res.Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t ->
      let round, phase =
        match Phases.phase_at t with
        | Some (n, p) -> (n, p)
        | None -> (0, Phases.Inactive)
      in
      Format.printf
        "Rendezvous at time %.2f, during R's round %d (%s phase).@." t round
        (match phase with Phases.Active -> "active" | Phases.Inactive -> "inactive");
      (match
         ( res.Rvu_sim.Engine.bound.Universal.round,
           res.Rvu_sim.Engine.bound.Universal.time )
       with
      | Some k, Some bound ->
          Format.printf
            "Lemma 13 guarantees rendezvous by round k* = %d (time %.3g).@." k
            bound
      | _ -> ())
  | _ -> Format.printf "unexpected: no rendezvous@."
