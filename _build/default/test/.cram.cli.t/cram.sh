  $ rvu feasibility --speed 2
  $ rvu feasibility --mirror
  $ rvu schedule --rounds 3
  $ rvu bound --speed 2 -d 2 -r 0.1
  $ rvu simulate --tau 0.5 -d 1.5 -r 0.5 --bearing 0
  $ rvu search -d 2 -r 0.05 --bearing 0
  $ rvu gather --robot 2,2,1 -r 0.3 --horizon 1000000
  $ rvu gather -r 0.4 --horizon 100000
  $ rvu simulate --speed 2 -d 2 -r 0.2 --svg meet.svg > /dev/null
  $ grep -c "</svg>" meet.svg
