(* End-to-end integration tests: the paper's headline claims executed through
   the full stack (workload generator -> universal algorithm -> realisation ->
   detector -> analytic bounds).

   These are the "does the reproduction actually reproduce" tests:
   - every feasible atlas cell rendezvouses within its analytic guarantee;
   - every infeasible cell survives a long horizon, and on the adversarial
     bearing carries a certified separation;
   - randomly generated scenarios of each feasibility class rendezvous;
   - the detector's hit time is insensitive to its resolution parameter. *)

open Rvu_geom
open Rvu_core
open Rvu_workload

let check_bool = Alcotest.(check bool)

let run_cell ?(bearing = 0.9) ?(d = 1.5) ?(r = 0.4) ?horizon attributes =
  let inst =
    Rvu_sim.Engine.instance ~attributes
      ~displacement:(Vec2.of_polar ~radius:d ~angle:bearing)
      ~r
  in
  (Rvu_sim.Engine.run ?horizon inst, inst)

let test_atlas_feasible_cells () =
  List.iter
    (fun cell ->
      match cell.Atlas.expected with
      | Feasibility.Infeasible -> ()
      | Feasibility.Feasible _ -> begin
          let res, _ = run_cell ~horizon:1e9 cell.Atlas.attributes in
          match res.Rvu_sim.Engine.outcome with
          | Rvu_sim.Detector.Hit t ->
              let bound = Option.get res.Rvu_sim.Engine.bound.Universal.time in
              check_bool
                (Printf.sprintf "%s: hit %g within bound %g" cell.Atlas.label t
                   bound)
                true (t <= bound)
          | _ -> Alcotest.fail (cell.Atlas.label ^ ": no rendezvous")
        end)
    Atlas.cells

let test_atlas_infeasible_cells () =
  List.iter
    (fun cell ->
      match cell.Atlas.expected with
      | Feasibility.Feasible _ -> ()
      | Feasibility.Infeasible -> begin
          (* Adversarial bearing: provably never meet. *)
          let dhat =
            Option.get (Feasibility.adversarial_direction cell.Atlas.attributes)
          in
          let inst =
            Rvu_sim.Engine.instance ~attributes:cell.Atlas.attributes
              ~displacement:(Vec2.scale 1.5 dhat) ~r:0.4
          in
          let horizon = 20_000.0 in
          let res = Rvu_sim.Engine.run ~horizon inst in
          check_bool
            (cell.Atlas.label ^ ": survives horizon")
            true
            (res.Rvu_sim.Engine.outcome = Rvu_sim.Detector.Horizon horizon);
          let sep =
            Rvu_sim.Engine.separation_certificate ~resolution:2e-2
              ~horizon:2000.0 inst
          in
          check_bool
            (Printf.sprintf "%s: certified separation %g > r" cell.Atlas.label
               sep)
            true (sep > 0.4)
        end)
    Atlas.cells

let scenario_rendezvouses ?horizon (s : Scenario.t) =
  let inst =
    Rvu_sim.Engine.instance ~attributes:s.Scenario.attributes
      ~displacement:(Scenario.displacement s) ~r:s.Scenario.r
  in
  let res = Rvu_sim.Engine.run ?horizon inst in
  match res.Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t -> begin
      match res.Rvu_sim.Engine.bound.Universal.time with
      | Some bound -> t <= bound
      | None -> false
    end
  | _ -> false

let test_random_speed_scenarios () =
  let g = Rng.create ~seed:101L in
  for i = 1 to 10 do
    let s = Scenario.random_speeds g in
    check_bool (Printf.sprintf "speeds #%d" i) true
      (scenario_rendezvouses ~horizon:1e9 s)
  done

let test_random_rotation_scenarios () =
  let g = Rng.create ~seed:202L in
  for i = 1 to 10 do
    let s = Scenario.random_rotated g in
    check_bool (Printf.sprintf "rotated #%d" i) true
      (scenario_rendezvouses ~horizon:1e9 s)
  done

let test_random_mirror_scenarios () =
  let g = Rng.create ~seed:303L in
  for i = 1 to 8 do
    let s = Scenario.random_mirror g in
    check_bool (Printf.sprintf "mirror #%d" i) true
      (scenario_rendezvouses ~horizon:1e9 s)
  done

let test_random_clock_scenarios () =
  let g = Rng.create ~seed:404L in
  for i = 1 to 6 do
    let s = Scenario.random_clocks g in
    check_bool (Printf.sprintf "clocks #%d" i) true
      (scenario_rendezvouses ~horizon:1e10 s)
  done

let test_random_infeasible_scenarios () =
  (* Random bearings usually admit rendezvous only for feasible attribute
     vectors; infeasible ones must never produce a Hit... except that for
     infeasible instances a *generic* bearing can still be approached when
     chi = -1 (only the adversarial direction is guaranteed separated — the
     robots may stumble within r on other bearings). Identical robots,
     however, never change relative position regardless of bearing. *)
  let g = Rng.create ~seed:505L in
  for i = 1 to 5 do
    let s = Scenario.random_infeasible g in
    if Attributes.is_reference s.Scenario.attributes then begin
      let inst =
        Rvu_sim.Engine.instance ~attributes:s.Scenario.attributes
          ~displacement:(Scenario.displacement s) ~r:s.Scenario.r
      in
      let res = Rvu_sim.Engine.run ~horizon:5000.0 inst in
      check_bool
        (Printf.sprintf "identical #%d stays apart" i)
        true
        (res.Rvu_sim.Engine.outcome = Rvu_sim.Detector.Horizon 5000.0)
    end
  done

(* The paper's central reduction (Lemma 4 + Definition 1), executed. *)

let attrs_sym_arb =
  QCheck.map
    (fun ((v, phi), chi) ->
      Attributes.make ~v ~phi
        ~chi:(if chi then Attributes.Same else Attributes.Opposite)
        ())
    QCheck.(pair (pair (float_range 0.3 3.0) (float_range 0.0 6.28)) bool)

let prop_definition1_pointwise =
  (* At any time t (with equal clocks), the inter-robot displacement equals
     T∘·S(t) − d: rendezvous is exactly the induced search problem. *)
  QCheck.Test.make ~name:"definition 1: S(t) - S'(t) = T.S(t) pointwise"
    ~count:200
    (QCheck.pair attrs_sym_arb (QCheck.float_range 0.0 390.0))
    (fun (attributes, t) ->
      let program = Rvu_search.Algorithm4.search_all 2 in
      let d = Vec2.make (-0.8) 1.7 in
      let pos_r =
        Rvu_trajectory.Realize.position Rvu_trajectory.Realize.identity program t
      in
      let pos_r' =
        Rvu_trajectory.Realize.position (Frame.clocked attributes ~displacement:d)
          program t
      in
      let s_local = Rvu_trajectory.Program.position_at program t in
      let induced = Rvu_geom.Mat2.apply (Equivalent.t_matrix attributes) s_local in
      Vec2.equal ~tol:1e-6 (Vec2.sub pos_r pos_r') (Vec2.sub induced d))

let prop_lemma6_hit_time_reduction =
  (* chi = +1: the rendezvous instant equals the first time the mu-scaled
     trajectory reaches the rotated target — the exact Lemma 6 argument. *)
  QCheck.Test.make
    ~name:"lemma 6: rendezvous time = mu-scaled search time of rotated target"
    ~count:40
    QCheck.(pair (float_range 0.3 3.0) (float_range 0.1 6.1))
    (fun (v, phi) ->
      let attributes = Attributes.make ~v ~phi () in
      QCheck.assume (Equivalent.mu attributes > 0.05);
      let d = Vec2.make 1.1 (-0.6) in
      let r = 0.2 in
      let program () = Rvu_search.Algorithm4.program () in
      let rendezvous =
        let inst = Rvu_sim.Engine.instance ~attributes ~displacement:d ~r in
        match
          (Rvu_sim.Engine.run ~horizon:1e7 ~program:(program ()) inst)
            .Rvu_sim.Engine.outcome
        with
        | Rvu_sim.Detector.Hit t -> t
        | _ -> QCheck.assume_fail ()
      in
      let search =
        let q, _ = Option.get (Equivalent.factor attributes) in
        let target = Rvu_geom.Mat2.apply (Rvu_geom.Mat2.transpose q) d in
        let clocked =
          Rvu_trajectory.Realize.make
            ~frame:(Rvu_geom.Conformal.make ~scale:(Equivalent.mu attributes) ())
            ~time_unit:1.0
        in
        match
          Rvu_sim.Search_engine.run ~clocked ~program:(program ()) ~target ~r ()
        with
        | Rvu_sim.Search_engine.Found t, _ -> t
        | _ -> QCheck.assume_fail ()
      in
      Float.abs (rendezvous -. search) <= 1e-5 *. Float.max 1.0 rendezvous)

let test_resolution_insensitivity () =
  (* The reported hit time must be stable across detector resolutions. *)
  let inst =
    Rvu_sim.Engine.instance
      ~attributes:(Attributes.make ~v:1.7 ~phi:0.9 ())
      ~displacement:(Vec2.make 1.2 0.8) ~r:0.25
  in
  let hit resolution =
    match
      (Rvu_sim.Engine.run ~resolution ~horizon:1e7 inst).Rvu_sim.Engine.outcome
    with
    | Rvu_sim.Detector.Hit t -> t
    | _ -> Alcotest.fail "expected a hit"
  in
  let t3 = hit 1e-3 and t6 = hit 1e-6 and t9 = hit 1e-9 in
  check_bool "1e-3 vs 1e-9" true (Float.abs (t3 -. t9) < 1e-2);
  check_bool "1e-6 vs 1e-9" true (Float.abs (t6 -. t9) < 1e-5)

let test_algorithm4_vs_algorithm7_symmetric_clocks () =
  (* With tau = 1 both algorithms must solve the instance; Algorithm 4 is
     strictly faster (no idle phases). *)
  let inst =
    Rvu_sim.Engine.instance
      ~attributes:(Attributes.make ~v:2.0 ())
      ~displacement:(Vec2.make 2.0 1.0) ~r:0.1
  in
  let time program =
    match
      (Rvu_sim.Engine.run ~horizon:1e7 ~program inst).Rvu_sim.Engine.outcome
    with
    | Rvu_sim.Detector.Hit t -> t
    | _ -> Alcotest.fail "expected a hit"
  in
  let t4 = time (Rvu_search.Algorithm4.program ()) in
  let t7 = time (Universal.program ()) in
  check_bool "both finite" true (t4 > 0.0 && t7 > 0.0);
  check_bool "algorithm 4 at least as fast" true (t4 <= t7 +. 1e-9)

let test_asymmetric_round_bound_holds () =
  (* Measured rendezvous round never exceeds the Lemma 13 round bound. *)
  List.iter
    (fun tau ->
      let attributes = Attributes.make ~tau () in
      let inst =
        Rvu_sim.Engine.instance ~attributes
          ~displacement:(Vec2.make 1.5 0.5) ~r:0.4
      in
      let res = Rvu_sim.Engine.run ~horizon:1e9 inst in
      match res.Rvu_sim.Engine.outcome with
      | Rvu_sim.Detector.Hit t ->
          let round =
            match Phases.phase_at t with Some (n, _) -> n | None -> 0
          in
          let bound = Option.get res.Rvu_sim.Engine.bound.Universal.round in
          check_bool
            (Printf.sprintf "tau=%g: round %d <= k* %d" tau round bound)
            true (round <= bound)
      | _ -> Alcotest.fail (Printf.sprintf "tau=%g must rendezvous" tau))
    [ 0.5; 0.6; 0.75 ]

let () =
  Alcotest.run "integration"
    [
      ( "theorem 4 atlas",
        [
          Alcotest.test_case "feasible cells rendezvous within bounds" `Slow
            test_atlas_feasible_cells;
          Alcotest.test_case "infeasible cells stay apart" `Slow
            test_atlas_infeasible_cells;
        ] );
      ( "random scenarios",
        [
          Alcotest.test_case "different speeds" `Slow test_random_speed_scenarios;
          Alcotest.test_case "rotated compasses" `Slow test_random_rotation_scenarios;
          Alcotest.test_case "mirror chirality" `Slow test_random_mirror_scenarios;
          Alcotest.test_case "asymmetric clocks" `Slow test_random_clock_scenarios;
          Alcotest.test_case "infeasible" `Slow test_random_infeasible_scenarios;
        ] );
      ( "definition 1 reduction",
        [
          QCheck_alcotest.to_alcotest prop_definition1_pointwise;
          QCheck_alcotest.to_alcotest prop_lemma6_hit_time_reduction;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "resolution insensitivity" `Quick
            test_resolution_insensitivity;
          Alcotest.test_case "algorithm 4 vs 7" `Quick
            test_algorithm4_vs_algorithm7_symmetric_clocks;
          Alcotest.test_case "lemma 13 round bound" `Slow
            test_asymmetric_round_bound_holds;
        ] );
    ]
