(* Tests for Rvu_baselines: the spiral search baseline and the asymmetric
   wait-for-mommy rendezvous baseline. *)

open Rvu_geom
open Rvu_baselines

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Spiral *)

let test_spiral_validation () =
  Alcotest.check_raises "rho <= 0"
    (Invalid_argument "Spiral.program: rho <= 0") (fun () ->
      ignore (Spiral.program ~rho:0.0 () : Rvu_trajectory.Program.t))

let test_spiral_continuity () =
  let segs =
    Rvu_trajectory.Program.take_segments 500 (Spiral.program ~rho:0.3 ())
  in
  check_bool "continuous" true
    (Rvu_trajectory.Program.check_continuity (List.to_seq segs) = Ok ())

let test_spiral_starts_at_origin () =
  match Rvu_trajectory.Program.take_segments 1 (Spiral.program ~rho:0.3 ()) with
  | [ Rvu_trajectory.Segment.Line { src; _ } ] ->
      check_bool "origin" true (Vec2.equal src Vec2.zero)
  | _ -> Alcotest.fail "spiral starts with a line"

let test_spiral_pitch () =
  check_float "pitch = 1.5 rho" 0.45 (Spiral.pitch ~rho:0.3 ~segments_per_turn:64)

let spiral_coverage ~rho ~disk =
  (* Take enough of the spiral to pass radius [disk], then check a polar
     grid of the disk is within rho of the polyline. *)
  let segs = ref [] in
  let continue = ref true in
  let stream = ref (Spiral.program ~rho ()) in
  while !continue do
    match !stream () with
    | Seq.Nil -> continue := false
    | Seq.Cons (seg, rest) ->
        segs := seg :: !segs;
        stream := rest;
        if Vec2.norm (Rvu_trajectory.Segment.end_pos seg) > disk +. (2.0 *. rho)
        then continue := false
  done;
  let dist_to q =
    List.fold_left
      (fun acc seg ->
        match (seg : Rvu_trajectory.Segment.t) with
        | Rvu_trajectory.Segment.Line { src; dst } ->
            Float.min acc (Dist.point_segment q src dst)
        | _ -> acc)
      Float.infinity !segs
  in
  let worst = ref 0.0 in
  for i = 0 to 24 do
    for j = 0 to 48 do
      let radius = float_of_int i /. 24.0 *. disk in
      let angle = float_of_int j /. 48.0 *. Rvu_numerics.Floats.two_pi in
      let q = Vec2.of_polar ~radius ~angle in
      worst := Float.max !worst (dist_to q)
    done
  done;
  !worst

let test_spiral_coverage () =
  let rho = 0.25 in
  let worst = spiral_coverage ~rho ~disk:3.0 in
  check_bool
    (Printf.sprintf "every disk point within rho (worst %.4f)" worst)
    true (worst <= rho +. 1e-9)

let prop_spiral_finds_targets =
  QCheck.Test.make ~name:"spiral: finds any reachable target" ~count:20
    QCheck.(pair (float_range 0.3 3.0) (float_range 0.0 6.28))
    (fun (d, bearing) ->
      let r = 0.2 in
      let target = Vec2.of_polar ~radius:d ~angle:bearing in
      match
        Rvu_sim.Search_engine.run
          ~program:(Spiral.program ~rho:r ())
          ~target ~r ()
      with
      | Rvu_sim.Search_engine.Found t, _ ->
          (* Within the analytic sweep estimate plus slack. *)
          t <= (2.0 *. Spiral.search_time_estimate ~d ~rho:r) +. 10.0
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Asymmetric baseline *)

let test_waiter_is_stationary () =
  let segs = Rvu_trajectory.Program.take_segments 10 (Asymmetric.waiter ()) in
  check_bool "all waits at origin" true
    (List.for_all
       (function
         | Rvu_trajectory.Segment.Wait { pos; _ } -> Vec2.equal pos Vec2.zero
         | _ -> false)
       segs)

let test_asymmetric_solves_identical_robots () =
  (* The symmetric-infeasible instance par excellence. *)
  let inst =
    Rvu_sim.Engine.instance ~attributes:Rvu_core.Attributes.reference
      ~displacement:(Vec2.make 1.5 1.0) ~r:0.1
  in
  match Asymmetric.run ~horizon:1e7 inst with
  | Rvu_sim.Detector.Hit t, _ ->
      check_bool "positive time" true (t > 0.0);
      check_bool "within the search bound" true
        (t <= Asymmetric.time_bound ~d:(Vec2.norm (Vec2.make 1.5 1.0)) ~r:0.1)
  | _ -> Alcotest.fail "wait-for-mommy must always succeed"

let test_asymmetric_ignores_attributes () =
  (* The waiting baseline's meeting time is attribute-independent when the
     waiter is R' at the same position: R does all the work. *)
  let time attributes =
    let inst =
      Rvu_sim.Engine.instance ~attributes
        ~displacement:(Vec2.make 1.5 1.0) ~r:0.1
    in
    match Asymmetric.run ~horizon:1e7 inst with
    | Rvu_sim.Detector.Hit t, _ -> t
    | _ -> Alcotest.fail "must succeed"
  in
  let t_ref = time Rvu_core.Attributes.reference in
  let t_fast = time (Rvu_core.Attributes.make ~v:3.0 ~tau:0.4 ~phi:1.0 ()) in
  check_float "same meeting time" t_ref t_fast

let test_run_two_matches_engine_for_same_program () =
  (* run_two with identical programs must agree with the symmetric run. *)
  let inst =
    Rvu_sim.Engine.instance
      ~attributes:(Rvu_core.Attributes.make ~v:2.0 ())
      ~displacement:(Vec2.make 2.0 1.0) ~r:0.1
  in
  let p () = Rvu_search.Algorithm4.program () in
  let sym =
    match
      (Rvu_sim.Engine.run ~horizon:1e6 ~program:(p ()) inst).Rvu_sim.Engine.outcome
    with
    | Rvu_sim.Detector.Hit t -> t
    | _ -> Alcotest.fail "must hit"
  in
  match
    Rvu_sim.Engine.run_two ~horizon:1e6 ~program_r:(p ()) ~program_r':(p ()) inst
  with
  | Rvu_sim.Detector.Hit t, _ -> check_float "same hit time" sym t
  | _ -> Alcotest.fail "must hit"

(* ------------------------------------------------------------------ *)
(* Random walk baseline *)

let test_random_walk_deterministic () =
  (* Same seed: identical program, and re-traversing the lazy stream must
     give the identical walk (pure function of seed and index). *)
  let walk () =
    Rvu_trajectory.Program.take_segments 20 (Random_walk.program ~seed:42L ())
    |> List.map Rvu_trajectory.Segment.end_pos
  in
  check_bool "same seed same walk" true (walk () = walk ());
  let p = Random_walk.program ~seed:7L () in
  let first = Rvu_trajectory.Program.take_segments 10 p in
  let second = Rvu_trajectory.Program.take_segments 10 p in
  check_bool "re-traversal identical" true (first = second)

let test_random_walk_step_and_continuity () =
  let p = Random_walk.program ~seed:3L ~step:0.5 () in
  let segs = Rvu_trajectory.Program.take_segments 50 p in
  check_bool "continuous" true
    (Rvu_trajectory.Program.check_continuity (List.to_seq segs) = Ok ());
  check_bool "all legs have the step length" true
    (List.for_all
       (fun s -> Rvu_numerics.Floats.equal (Rvu_trajectory.Segment.length s) 0.5)
       segs);
  Alcotest.check_raises "bad step"
    (Invalid_argument "Random_walk.program: step <= 0") (fun () ->
      ignore (Random_walk.program ~seed:1L ~step:0.0 () : Rvu_trajectory.Program.t))

let test_random_walk_same_seed_rigid () =
  (* Identical robots with the same seed stay at constant distance. *)
  let inst =
    Rvu_sim.Engine.instance ~attributes:Rvu_core.Attributes.reference
      ~displacement:(Vec2.make 3.0 1.0) ~r:0.3
  in
  match Random_walk.run ~horizon:2000.0 ~seed_r:5L ~seed_r':5L inst with
  | Rvu_sim.Detector.Horizon _, stats ->
      check_bool "distance rigid" true
        (Rvu_numerics.Floats.equal ~tol:1e-6
           stats.Rvu_sim.Detector.min_distance (sqrt 10.0))
  | _ -> Alcotest.fail "same-seed walkers are identical robots: never meet"

let test_random_walk_different_seeds_meet () =
  (* A seed pair known (from the experiment) to meet within the horizon. *)
  let inst =
    Rvu_sim.Engine.instance ~attributes:Rvu_core.Attributes.reference
      ~displacement:(Vec2.make 2.0 0.0) ~r:0.5
  in
  match Random_walk.run ~horizon:1e5 ~seed_r:1L ~seed_r':101L inst with
  | Rvu_sim.Detector.Hit t, _ -> check_bool "met" true (t > 0.0)
  | _ -> Alcotest.fail "this seed pair meets within the horizon"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rvu_baselines"
    [
      ( "spiral",
        [
          Alcotest.test_case "validation" `Quick test_spiral_validation;
          Alcotest.test_case "continuity" `Quick test_spiral_continuity;
          Alcotest.test_case "starts at origin" `Quick test_spiral_starts_at_origin;
          Alcotest.test_case "pitch" `Quick test_spiral_pitch;
          Alcotest.test_case "coverage" `Quick test_spiral_coverage;
          qc prop_spiral_finds_targets;
        ] );
      ( "asymmetric",
        [
          Alcotest.test_case "waiter stationary" `Quick test_waiter_is_stationary;
          Alcotest.test_case "solves identical robots" `Quick
            test_asymmetric_solves_identical_robots;
          Alcotest.test_case "attribute independent" `Quick
            test_asymmetric_ignores_attributes;
          Alcotest.test_case "run_two consistency" `Quick
            test_run_two_matches_engine_for_same_program;
        ] );
      ( "random walk",
        [
          Alcotest.test_case "deterministic" `Quick test_random_walk_deterministic;
          Alcotest.test_case "step and continuity" `Quick
            test_random_walk_step_and_continuity;
          Alcotest.test_case "same seed rigid" `Quick test_random_walk_same_seed_rigid;
          Alcotest.test_case "different seeds meet" `Quick
            test_random_walk_different_seeds_meet;
        ] );
    ]
