(* Unit and property tests for Rvu_numerics. *)

open Rvu_numerics

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Floats *)

let test_equal_tolerant () =
  check_bool "equal within tol" true (Floats.equal 1.0 (1.0 +. 1e-12));
  check_bool "not equal outside tol" false (Floats.equal 1.0 1.001);
  check_bool "relative scaling" true (Floats.equal 1e12 (1e12 +. 1.0));
  check_bool "zero vs tiny" true (Floats.equal 0.0 1e-12)

let test_leq_geq () =
  check_bool "leq strict" true (Floats.leq 1.0 2.0);
  check_bool "leq equal" true (Floats.leq 2.0 2.0);
  check_bool "leq slack" true (Floats.leq (2.0 +. 1e-12) 2.0);
  check_bool "leq false" false (Floats.leq 2.1 2.0);
  check_bool "geq mirrors" true (Floats.geq 2.0 1.0)

let test_clamp () =
  check_float "below" 0.0 (Floats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Floats.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Floats.clamp ~lo:0.0 ~hi:1.0 0.5);
  Alcotest.check_raises "bad interval" (Invalid_argument "Floats.clamp: lo > hi")
    (fun () -> ignore (Floats.clamp ~lo:1.0 ~hi:0.0 0.5))

let test_log2 () =
  check_float "log2 8" 3.0 (Floats.log2 8.0);
  check_float "log2 1" 0.0 (Floats.log2 1.0);
  check_float "log2 0.25" (-2.0) (Floats.log2 0.25)

let test_ceil_div_pos () =
  Alcotest.(check int) "exact" 4 (Floats.ceil_div_pos 8.0 2.0);
  Alcotest.(check int) "round up" 5 (Floats.ceil_div_pos 8.1 2.0);
  Alcotest.(check int) "zero numerator" 0 (Floats.ceil_div_pos 0.0 2.0);
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Floats.ceil_div_pos: divisor <= 0") (fun () ->
      ignore (Floats.ceil_div_pos 1.0 0.0))

let test_finite_or_fail () =
  check_float "passes finite" 3.5 (Floats.finite_or_fail ~ctx:"t" 3.5);
  check_bool "raises on nan" true
    (try
       ignore (Floats.finite_or_fail ~ctx:"t" Float.nan);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Kahan *)

let test_kahan_small_plus_large () =
  (* 1 + 1e-16 added 10^6 times: naive summation loses all the small terms. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  for _ = 1 to 1_000_000 do
    Kahan.add acc 1e-16
  done;
  check_float "compensated" (1.0 +. 1e-10) (Kahan.total acc)

let test_kahan_large_addend () =
  (* Neumaier handles an addend larger than the running sum. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  Kahan.add acc 1e100;
  Kahan.add acc 1.0;
  Kahan.add acc (-1e100);
  check_float "neumaier" 2.0 (Kahan.total acc)

let test_kahan_sum_list () =
  check_float "list" 10.0 (Kahan.sum_list [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "empty" 0.0 (Kahan.sum_list []);
  check_float "seq" 10.0 (Kahan.sum_seq (List.to_seq [ 1.0; 2.0; 3.0; 4.0 ]))

let prop_kahan_matches_exact =
  QCheck.Test.make ~name:"kahan: matches integer-exact sums" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun ints ->
      let floats = List.map float_of_int ints in
      let expected = float_of_int (List.fold_left ( + ) 0 ints) in
      Kahan.sum_list floats = expected)

(* ------------------------------------------------------------------ *)
(* Brent *)

let test_brent_cos () =
  match Brent.root ~f:cos ~lo:0.0 ~hi:2.0 () with
  | Ok x -> check_float "pi/2" (Float.pi /. 2.0) x
  | Error msg -> Alcotest.fail msg

let test_brent_endpoint_zero () =
  (match Brent.root ~f:(fun x -> x) ~lo:0.0 ~hi:1.0 () with
  | Ok x -> check_float "endpoint root" 0.0 x
  | Error msg -> Alcotest.fail msg);
  match Brent.root ~f:(fun x -> x -. 1.0) ~lo:0.0 ~hi:1.0 () with
  | Ok x -> check_float "hi endpoint root" 1.0 x
  | Error msg -> Alcotest.fail msg

let test_brent_no_bracket () =
  match Brent.root ~f:(fun x -> (x *. x) +. 1.0) ~lo:(-1.0) ~hi:1.0 () with
  | Ok _ -> Alcotest.fail "accepted a non-bracketing interval"
  | Error _ -> ()

let prop_brent_cubic =
  QCheck.Test.make ~name:"brent: root of shifted cubic" ~count:200
    QCheck.(float_range (-5.0) 5.0)
    (fun c ->
      let f x = (x *. x *. x) -. c in
      match Brent.root ~f ~lo:(-10.0) ~hi:10.0 () with
      | Ok x -> Float.abs (f x) < 1e-8
      | Error _ -> false)

let test_bisect_first () =
  (* f positive then negative: first crossing of x ↦ 1 − x at 1. *)
  let f x = 1.0 -. x in
  let t = Brent.bisect_first ~f ~lo:0.0 ~hi:3.0 () in
  check_float "first crossing" 1.0 t

(* ------------------------------------------------------------------ *)
(* Lambert W *)

let prop_w0_inverse =
  QCheck.Test.make ~name:"lambert: w0 e^w0 = x" ~count:300
    QCheck.(float_range (-0.367) 1e6)
    (fun x ->
      match Lambert_w.w0 x with
      | Ok w -> Rvu_numerics.Floats.equal ~tol:1e-10 (w *. Float.exp w) x
      | Error _ -> false)

let prop_wm1_inverse =
  QCheck.Test.make ~name:"lambert: wm1 e^wm1 = x" ~count:300
    QCheck.(float_range (-0.367) (-1e-6))
    (fun x ->
      match Lambert_w.wm1 x with
      | Ok w ->
          w <= -1.0 +. 1e-6
          && Rvu_numerics.Floats.equal ~tol:1e-8 (w *. Float.exp w) x
      | Error _ -> false)

let test_w0_known_values () =
  check_float "W(0) = 0" 0.0 (Lambert_w.w0_exn 0.0);
  check_float "W(e) = 1" 1.0 (Lambert_w.w0_exn (Float.exp 1.0));
  check_float "W(-1/e) = -1" (-1.0) (Lambert_w.w0_exn Lambert_w.branch_point)

let test_w_domain_errors () =
  check_bool "w0 below -1/e" true (Result.is_error (Lambert_w.w0 (-1.0)));
  check_bool "w0 nan" true (Result.is_error (Lambert_w.w0 Float.nan));
  check_bool "wm1 positive" true (Result.is_error (Lambert_w.wm1 0.5));
  check_bool "wm1 zero" true (Result.is_error (Lambert_w.wm1 0.0))

let test_w0_asymptotic () =
  (* For large x, W(x) is close to (and per Hoorfar–Hassani below)
     ln x − ln ln x … within the next-order correction. *)
  let x = 1e8 in
  let w = Lambert_w.w0_exn x in
  let upper = Lambert_w.asymptotic_upper x in
  check_bool "w0 >= asymptotic lower form" true (w >= upper);
  check_bool "w0 close to asymptote" true (w -. upper < 1.0)

(* ------------------------------------------------------------------ *)
(* Lipschitz *)

let test_first_below_line () =
  (* f(t) = 5 − t crosses zero at t = 5; Lipschitz constant 1. *)
  match
    Lipschitz.first_below ~lipschitz:1.0 ~resolution:1e-6
      ~f:(fun t -> 5.0 -. t)
      ~lo:0.0 ~hi:10.0 ()
  with
  | Lipschitz.First_below t -> check_float "crossing at 5" 5.0 t
  | Lipschitz.Stays_above -> Alcotest.fail "missed the crossing"

let test_first_below_earliest () =
  (* Starts positive, dips below zero repeatedly; must report the first
     crossing, at t = π/4 where sin² t reaches 1/2. *)
  let f t = 0.5 -. (sin t *. sin t) in
  match
    Lipschitz.first_below ~lipschitz:1.0 ~resolution:1e-6 ~f ~lo:0.0 ~hi:10.0 ()
  with
  | Lipschitz.First_below t ->
      Alcotest.(check (float 1e-4)) "first dip" (Float.pi /. 4.0) t
  | Lipschitz.Stays_above -> Alcotest.fail "missed"

let test_stays_above_certified () =
  match
    Lipschitz.first_below ~lipschitz:1.0 ~resolution:1e-6
      ~f:(fun t -> 0.1 +. (0.05 *. sin t))
      ~lo:0.0 ~hi:100.0 ()
  with
  | Lipschitz.First_below _ -> Alcotest.fail "false positive"
  | Lipschitz.Stays_above -> ()

let test_first_below_at_lo () =
  match
    Lipschitz.first_below ~lipschitz:1.0 ~resolution:1e-6
      ~f:(fun t -> t -. 10.0)
      ~lo:0.0 ~hi:5.0 ()
  with
  | Lipschitz.First_below t -> check_float "already below at lo" 0.0 t
  | Lipschitz.Stays_above -> Alcotest.fail "missed"

let prop_first_below_shifted_sine =
  (* f(t) = sin(t) + c: for c < −sin(hi-range minimum) it must find the first
     crossing, which we can compute analytically. *)
  QCheck.Test.make ~name:"lipschitz: first crossing of sin + c" ~count:100
    QCheck.(float_range (-0.9) 0.9)
    (fun c ->
      let f t = sin t +. c in
      match
        Lipschitz.first_below ~lipschitz:1.0 ~resolution:1e-9 ~f ~lo:0.0
          ~hi:8.0 ()
      with
      | Lipschitz.First_below t ->
          let expected =
            if c <= 0.0 then 0.0 (* sin 0 + c <= 0 at the left endpoint *)
            else Float.pi +. asin c
          in
          Float.abs (t -. expected) < 1e-6
      | Lipschitz.Stays_above -> false)

let prop_min_lower_bound_certified =
  (* On random trig polynomials (Lipschitz constant |a| + 2|b|) the
     certified lower bound must sit just below the brute-force minimum. *)
  QCheck.Test.make ~name:"lipschitz: certified min below brute force"
    ~count:100
    QCheck.(
      triple (float_range (-2.0) 2.0) (float_range (-2.0) 2.0)
        (float_range (-1.0) 5.0))
    (fun (a, b, c) ->
      let f t = (a *. sin t) +. (b *. cos (2.0 *. t)) +. c in
      let l = Float.abs a +. (2.0 *. Float.abs b) in
      let lb =
        Lipschitz.min_lower_bound ~lipschitz:(l +. 1e-9) ~resolution:1e-3 ~f
          ~lo:0.0 ~hi:10.0 ()
      in
      let brute = ref Float.infinity in
      for i = 0 to 5000 do
        brute := Float.min !brute (f (float_of_int i /. 500.0))
      done;
      lb <= !brute +. 1e-9 && !brute -. lb <= (l *. 1e-3 /. 2.0) +. 2e-3)

let test_min_lower_bound () =
  let f t = 2.0 +. sin t in
  let lb =
    Lipschitz.min_lower_bound ~lipschitz:1.0 ~resolution:1e-4 ~f ~lo:0.0
      ~hi:10.0 ()
  in
  check_bool "lb below true min" true (lb <= 1.0);
  check_bool "lb tight" true (lb > 1.0 -. 1e-3)

let test_min_lower_bound_point () =
  check_float "degenerate interval" 7.0
    (Lipschitz.min_lower_bound ~lipschitz:1.0 ~resolution:1e-4
       ~f:(fun _ -> 7.0)
       ~lo:3.0 ~hi:3.0 ())

let test_lipschitz_validation () =
  let f t = t in
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Lipschitz: negative constant") (fun () ->
      ignore (Lipschitz.first_below ~lipschitz:(-1.0) ~resolution:1.0 ~f ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "bad resolution"
    (Invalid_argument "Lipschitz: non-positive resolution") (fun () ->
      ignore (Lipschitz.first_below ~lipschitz:1.0 ~resolution:0.0 ~f ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Lipschitz: empty interval") (fun () ->
      ignore (Lipschitz.first_below ~lipschitz:1.0 ~resolution:1.0 ~f ~lo:1.0 ~hi:0.0 ()))

(* ------------------------------------------------------------------ *)
(* Stats *)

let prop_summarize_invariants =
  QCheck.Test.make ~name:"stats: min <= median <= max, stddev >= 0" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.0) 100.0))
    (fun xs ->
      match Stats.summarize xs with
      | None -> xs = []
      | Some s ->
          s.Stats.min <= s.Stats.median +. 1e-9
          && s.Stats.median <= s.Stats.max +. 1e-9
          && s.Stats.stddev >= 0.0
          && s.Stats.min <= s.Stats.mean +. 1e-9
          && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"stats: percentile is monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 30) (float_range (-50.0) 50.0))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p, q)) ->
      let lo = Float.min p q and hi = Float.max p q in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let prop_kahan_order_independent =
  QCheck.Test.make ~name:"kahan: summation is order independent" ~count:200
    QCheck.(list (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Kahan.sum_list xs in
      let b = Kahan.sum_list (List.rev xs) in
      Rvu_numerics.Floats.equal ~tol:1e-12 a b)

let test_summarize () =
  match Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] with
  | None -> Alcotest.fail "summary of non-empty list"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Stats.count;
      check_float "mean" 3.0 s.Stats.mean;
      check_float "median" 3.0 s.Stats.median;
      check_float "min" 1.0 s.Stats.min;
      check_float "max" 5.0 s.Stats.max;
      check_float "stddev" (sqrt 2.5) s.Stats.stddev

let test_summarize_empty () =
  check_bool "empty" true (Stats.summarize [] = None)

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 100.0 xs);
  check_float "p50 interpolates" 25.0 (Stats.percentile 50.0 xs)

let test_geometric_mean () =
  check_float "gm" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ]);
  check_bool "raises on zero" true
    (try
       ignore (Stats.geometric_mean [ 1.0; 0.0 ]);
       false
     with Invalid_argument _ -> true)

let test_max_ratio () =
  check_float "max ratio" 0.5
    (Stats.max_ratio [ (1.0, 4.0); (2.0, 4.0); (1.0, 10.0) ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rvu_numerics"
    [
      ( "floats",
        [
          Alcotest.test_case "tolerant equality" `Quick test_equal_tolerant;
          Alcotest.test_case "leq/geq" `Quick test_leq_geq;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "ceil_div_pos" `Quick test_ceil_div_pos;
          Alcotest.test_case "finite_or_fail" `Quick test_finite_or_fail;
        ] );
      ( "kahan",
        [
          Alcotest.test_case "small plus large" `Quick test_kahan_small_plus_large;
          Alcotest.test_case "large addend" `Quick test_kahan_large_addend;
          Alcotest.test_case "sum_list/sum_seq" `Quick test_kahan_sum_list;
          qc prop_kahan_matches_exact;
        ] );
      ( "brent",
        [
          Alcotest.test_case "cos root" `Quick test_brent_cos;
          Alcotest.test_case "endpoint zeros" `Quick test_brent_endpoint_zero;
          Alcotest.test_case "no bracket" `Quick test_brent_no_bracket;
          Alcotest.test_case "bisect first" `Quick test_bisect_first;
          qc prop_brent_cubic;
        ] );
      ( "lambert_w",
        [
          Alcotest.test_case "known values" `Quick test_w0_known_values;
          Alcotest.test_case "domain errors" `Quick test_w_domain_errors;
          Alcotest.test_case "asymptotics" `Quick test_w0_asymptotic;
          qc prop_w0_inverse;
          qc prop_wm1_inverse;
        ] );
      ( "lipschitz",
        [
          Alcotest.test_case "line crossing" `Quick test_first_below_line;
          Alcotest.test_case "earliest dip" `Quick test_first_below_earliest;
          Alcotest.test_case "certified absence" `Quick test_stays_above_certified;
          Alcotest.test_case "below at lo" `Quick test_first_below_at_lo;
          Alcotest.test_case "min lower bound" `Quick test_min_lower_bound;
          Alcotest.test_case "degenerate interval" `Quick test_min_lower_bound_point;
          Alcotest.test_case "validation" `Quick test_lipschitz_validation;
          qc prop_first_below_shifted_sine;
          qc prop_min_lower_bound_certified;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "max ratio" `Quick test_max_ratio;
          qc prop_summarize_invariants;
          qc prop_percentile_monotone;
          qc prop_kahan_order_independent;
        ] );
    ]
