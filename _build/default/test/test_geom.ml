(* Unit and property tests for Rvu_geom. *)

open Rvu_geom

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let vec2_arb =
  QCheck.map
    (fun (x, y) -> Vec2.make x y)
    QCheck.(pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0))

let angle_arb = QCheck.float_range 0.0 (Rvu_numerics.Floats.two_pi -. 1e-9)

let mat2_arb =
  QCheck.map
    (fun ((a, b), (c, d)) -> Mat2.make ~a ~b ~c ~d)
    QCheck.(
      pair
        (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
        (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0)))

let conformal_arb =
  QCheck.map
    (fun (((scale, angle), reflect), offset) ->
      Conformal.make ~scale ~angle ~reflect ~offset ())
    QCheck.(
      pair
        (pair (pair (float_range 0.1 10.0) (float_range 0.0 6.28)) bool)
        vec2_arb)

(* ------------------------------------------------------------------ *)
(* Vec2 *)

let test_vec2_basics () =
  let a = Vec2.make 3.0 4.0 in
  check_float "norm" 5.0 (Vec2.norm a);
  check_float "norm2" 25.0 (Vec2.norm2 a);
  check_float "dist" 5.0 (Vec2.dist Vec2.zero a);
  check_float "dot with perp is 0" 0.0 (Vec2.dot a (Vec2.perp a));
  check_float "cross with self is 0" 0.0 (Vec2.cross a a);
  check_bool "normalize has unit norm" true
    (Rvu_numerics.Floats.equal 1.0 (Vec2.norm (Vec2.normalize a)))

let test_vec2_zero_errors () =
  Alcotest.check_raises "normalize zero"
    (Invalid_argument "Vec2.normalize: zero vector") (fun () ->
      ignore (Vec2.normalize Vec2.zero));
  Alcotest.check_raises "angle of zero"
    (Invalid_argument "Vec2.angle_of: zero vector") (fun () ->
      ignore (Vec2.angle_of Vec2.zero))

let test_vec2_polar () =
  let v = Vec2.of_polar ~radius:2.0 ~angle:(Float.pi /. 2.0) in
  check_bool "polar up" true (Vec2.equal ~tol:1e-12 v (Vec2.make 0.0 2.0));
  check_float "angle roundtrip" (Float.pi /. 4.0)
    (Vec2.angle_of (Vec2.of_polar ~radius:3.0 ~angle:(Float.pi /. 4.0)))

let test_vec2_lerp () =
  let a = Vec2.make 0.0 0.0 and b = Vec2.make 10.0 20.0 in
  check_bool "midpoint" true
    (Vec2.equal (Vec2.lerp a b 0.5) (Vec2.make 5.0 10.0));
  check_bool "extrapolation" true
    (Vec2.equal (Vec2.lerp a b 2.0) (Vec2.make 20.0 40.0))

let prop_rotate_preserves_norm =
  QCheck.Test.make ~name:"vec2: rotation preserves norm" ~count:300
    (QCheck.pair vec2_arb angle_arb) (fun (v, a) ->
      Rvu_numerics.Floats.equal ~tol:1e-9 (Vec2.norm v)
        (Vec2.norm (Vec2.rotate a v)))

let prop_add_comm =
  QCheck.Test.make ~name:"vec2: addition commutes" ~count:200
    (QCheck.pair vec2_arb vec2_arb) (fun (a, b) ->
      Vec2.equal (Vec2.add a b) (Vec2.add b a))

let prop_cross_antisym =
  QCheck.Test.make ~name:"vec2: cross is antisymmetric" ~count:200
    (QCheck.pair vec2_arb vec2_arb) (fun (a, b) ->
      Rvu_numerics.Floats.equal (Vec2.cross a b) (-.Vec2.cross b a))

(* ------------------------------------------------------------------ *)
(* Mat2 *)

let test_mat2_identity () =
  let v = Vec2.make 2.0 3.0 in
  check_bool "identity is neutral" true
    (Vec2.equal v (Mat2.apply Mat2.identity v));
  check_float "det id" 1.0 (Mat2.det Mat2.identity)

let test_mat2_rotation () =
  let r = Mat2.rotation (Float.pi /. 2.0) in
  check_bool "rotates x to y" true
    (Vec2.equal ~tol:1e-12
       (Mat2.apply r (Vec2.make 1.0 0.0))
       (Vec2.make 0.0 1.0));
  check_bool "orthogonal" true (Mat2.is_orthogonal r);
  check_float "det rotation" 1.0 (Mat2.det r)

let test_mat2_reflect () =
  check_bool "reflects y" true
    (Vec2.equal
       (Mat2.apply Mat2.reflect_x (Vec2.make 1.0 2.0))
       (Vec2.make 1.0 (-2.0)));
  check_float "det reflection" (-1.0) (Mat2.det Mat2.reflect_x)

let prop_mat2_mul_apply =
  QCheck.Test.make ~name:"mat2: (M N)v = M(Nv)" ~count:300
    (QCheck.triple mat2_arb mat2_arb vec2_arb) (fun (m, n, v) ->
      Vec2.equal ~tol:1e-6
        (Mat2.apply (Mat2.mul m n) v)
        (Mat2.apply m (Mat2.apply n v)))

let prop_mat2_inverse =
  QCheck.Test.make ~name:"mat2: inverse(M) M = I when invertible" ~count:300
    mat2_arb (fun m ->
      match Mat2.inverse m with
      | None -> true
      | Some mi -> Mat2.equal ~tol:1e-6 (Mat2.mul mi m) Mat2.identity)

let prop_mat2_qr =
  QCheck.Test.make ~name:"mat2: QR reconstructs M, Q in SO(2), R triangular"
    ~count:300 mat2_arb (fun m ->
      match Mat2.qr m with
      | None -> Float.hypot m.Mat2.a m.Mat2.c = 0.0
      | Some (q, r) ->
          Mat2.equal ~tol:1e-6 (Mat2.mul q r) m
          && Mat2.is_orthogonal ~tol:1e-6 q
          && Rvu_numerics.Floats.equal ~tol:1e-6 (Mat2.det q) 1.0
          && r.Mat2.c = 0.0
          && r.Mat2.a >= -1e-9)

let prop_mat2_det_multiplicative =
  QCheck.Test.make ~name:"mat2: det(M N) = det M det N" ~count:300
    (QCheck.pair mat2_arb mat2_arb) (fun (m, n) ->
      Rvu_numerics.Floats.equal ~tol:1e-6
        (Mat2.det (Mat2.mul m n))
        (Mat2.det m *. Mat2.det n))

let test_mat2_singular_inverse () =
  let m = Mat2.make ~a:1.0 ~b:2.0 ~c:2.0 ~d:4.0 in
  check_bool "singular has no inverse" true (Mat2.inverse m = None)

(* ------------------------------------------------------------------ *)
(* Angle *)

let test_angle_normalize () =
  check_float "wraps down" 0.5 (Angle.normalize (0.5 +. (4.0 *. Float.pi)));
  check_float "wraps up"
    (Rvu_numerics.Floats.two_pi -. 0.5)
    (Angle.normalize (-0.5));
  check_float "signed positive" 0.5 (Angle.normalize_signed 0.5);
  check_float "signed negative" (-0.5)
    (Angle.normalize_signed (Rvu_numerics.Floats.two_pi -. 0.5))

let test_angle_diff () =
  check_float "short way" 0.2 (Angle.diff 0.1 (-0.1));
  check_float "across cut" 0.2
    (Angle.diff 0.1 (Rvu_numerics.Floats.two_pi -. 0.1))

let test_within_sweep () =
  check_bool "inside ccw" true (Angle.within_sweep ~from:0.0 ~sweep:Float.pi 1.0);
  check_bool "outside ccw" false
    (Angle.within_sweep ~from:0.0 ~sweep:Float.pi 4.0);
  check_bool "inside cw" true
    (Angle.within_sweep ~from:0.0 ~sweep:(-.Float.pi) (-1.0));
  check_bool "outside cw" false
    (Angle.within_sweep ~from:0.0 ~sweep:(-.Float.pi) 1.0);
  check_bool "full circle covers all" true
    (Angle.within_sweep ~from:1.0 ~sweep:Rvu_numerics.Floats.two_pi 4.0)

let test_degrees () =
  check_float "to deg" 180.0 (Angle.to_degrees Float.pi);
  check_float "of deg" Float.pi (Angle.of_degrees 180.0)

(* ------------------------------------------------------------------ *)
(* Conformal *)

let prop_conformal_matches_matrix =
  QCheck.Test.make ~name:"conformal: apply agrees with linear matrix + offset"
    ~count:300 (QCheck.pair conformal_arb vec2_arb) (fun (f, p) ->
      Vec2.equal ~tol:1e-6 (Conformal.apply f p)
        (Vec2.add f.Conformal.offset (Mat2.apply (Conformal.linear f) p)))

let prop_conformal_compose =
  QCheck.Test.make ~name:"conformal: compose = function composition" ~count:300
    (QCheck.triple conformal_arb conformal_arb vec2_arb) (fun (f, g, p) ->
      Vec2.equal ~tol:1e-5
        (Conformal.apply (Conformal.compose f g) p)
        (Conformal.apply f (Conformal.apply g p)))

let prop_conformal_inverse =
  QCheck.Test.make ~name:"conformal: inverse round-trips" ~count:300
    (QCheck.pair conformal_arb vec2_arb) (fun (f, p) ->
      Vec2.equal ~tol:1e-5 p
        (Conformal.apply (Conformal.inverse f) (Conformal.apply f p)))

let prop_conformal_map_angle =
  QCheck.Test.make ~name:"conformal: map_angle matches circle-point image"
    ~count:300 (QCheck.pair conformal_arb angle_arb) (fun (f, theta) ->
      (* A point at angle theta on the unit circle around the origin maps to
         angle (map_angle f theta) around the image of the origin. *)
      let p = Vec2.of_polar ~radius:1.0 ~angle:theta in
      let rel = Vec2.sub (Conformal.apply f p) (Conformal.apply f Vec2.zero) in
      Rvu_numerics.Floats.equal ~tol:1e-6
        (cos (Vec2.angle_of rel))
        (cos (Conformal.map_angle f theta))
      && Rvu_numerics.Floats.equal ~tol:1e-6
           (sin (Vec2.angle_of rel))
           (sin (Conformal.map_angle f theta)))

let prop_conformal_det_sign =
  QCheck.Test.make
    ~name:"conformal: linear determinant is chirality times scale squared"
    ~count:300 conformal_arb (fun f ->
      Rvu_numerics.Floats.equal ~tol:1e-6
        (Mat2.det (Conformal.linear f))
        (Conformal.chirality f *. f.Conformal.scale *. f.Conformal.scale))

let test_conformal_scale_validation () =
  Alcotest.check_raises "zero scale"
    (Invalid_argument "Conformal.make: scale must be positive") (fun () ->
      ignore (Conformal.make ~scale:0.0 ()))

let test_conformal_chirality () =
  check_float "same" 1.0 (Conformal.chirality (Conformal.make ()));
  check_float "opposite" (-1.0)
    (Conformal.chirality (Conformal.make ~reflect:true ()))

(* ------------------------------------------------------------------ *)
(* Dist *)

let brute_force_segment p a b =
  let n = 2000 in
  let best = ref Float.infinity in
  for i = 0 to n do
    let s = float_of_int i /. float_of_int n in
    best := Float.min !best (Vec2.dist p (Vec2.lerp a b s))
  done;
  !best

let prop_point_segment_param_consistent =
  QCheck.Test.make
    ~name:"dist: point_segment_param foot matches reported distance"
    ~count:300 (QCheck.triple vec2_arb vec2_arb vec2_arb) (fun (p, a, b) ->
      let d, s = Dist.point_segment_param p a b in
      s >= 0.0 && s <= 1.0
      && Rvu_numerics.Floats.equal ~tol:1e-9 d (Vec2.dist p (Vec2.lerp a b s)))

let prop_point_segment =
  QCheck.Test.make ~name:"dist: point-segment matches brute force" ~count:200
    (QCheck.triple vec2_arb vec2_arb vec2_arb) (fun (p, a, b) ->
      let exact = Dist.point_segment p a b in
      let approx = brute_force_segment p a b in
      (* The sampled minimum can overshoot by at most half a sampling step
         (the distance is 1-Lipschitz in arc length). *)
      let slack = (Vec2.dist a b /. 2000.0 /. 2.0) +. 1e-9 in
      Float.abs (exact -. approx) <= slack && exact <= approx +. 1e-9)

let test_point_segment_cases () =
  let a = Vec2.make 0.0 0.0 and b = Vec2.make 10.0 0.0 in
  check_float "interior foot" 2.0 (Dist.point_segment (Vec2.make 5.0 2.0) a b);
  check_float "clamps to endpoint" 5.0
    (Dist.point_segment (Vec2.make 15.0 0.0) a b);
  check_float "degenerate segment" 5.0
    (Dist.point_segment (Vec2.make 3.0 4.0) a a);
  let d, s = Dist.point_segment_param (Vec2.make 5.0 2.0) a b in
  check_float "param distance" 2.0 d;
  check_float "param foot" 0.5 s

let brute_force_arc p ~center ~radius ~from ~sweep =
  let n = 4000 in
  let best = ref Float.infinity in
  for i = 0 to n do
    let s = float_of_int i /. float_of_int n in
    let theta = from +. (s *. sweep) in
    let q = Vec2.add center (Vec2.of_polar ~radius ~angle:theta) in
    best := Float.min !best (Vec2.dist p q)
  done;
  !best

let prop_point_arc =
  QCheck.Test.make ~name:"dist: point-arc matches brute force" ~count:200
    QCheck.(
      triple vec2_arb
        (pair (float_range 0.1 10.0) angle_arb)
        (float_range (-6.28) 6.28))
    (fun (p, (radius, from), sweep) ->
      QCheck.assume (Float.abs sweep > 1e-3);
      let center = Vec2.make 1.0 (-2.0) in
      let exact = Dist.point_arc p ~center ~radius ~from ~sweep in
      let approx = brute_force_arc p ~center ~radius ~from ~sweep in
      let slack = (radius *. Float.abs sweep /. 4000.0 /. 2.0) +. 1e-9 in
      Float.abs (exact -. approx) <= slack && exact <= approx +. 1e-9)

let test_point_arc_cases () =
  let center = Vec2.zero in
  check_float "radial" 1.0
    (Dist.point_arc (Vec2.make 3.0 0.0) ~center ~radius:2.0 ~from:(-1.0)
       ~sweep:2.0);
  let d =
    Dist.point_arc (Vec2.make (-3.0) 0.0) ~center ~radius:2.0
      ~from:(-.Float.pi /. 2.0) ~sweep:Float.pi
  in
  check_float "endpoint distance"
    (Vec2.dist (Vec2.make (-3.0) 0.0) (Vec2.make 0.0 2.0))
    d;
  check_float "center" 2.0
    (Dist.point_arc Vec2.zero ~center ~radius:2.0 ~from:0.0 ~sweep:1.0);
  check_float "full circle" 3.0
    (Dist.point_arc (Vec2.make 5.0 0.0) ~center ~radius:2.0 ~from:0.0
       ~sweep:Rvu_numerics.Floats.two_pi)

let test_point_circle () =
  check_float "outside" 3.0
    (Dist.point_circle (Vec2.make 5.0 0.0) ~center:Vec2.zero ~radius:2.0);
  check_float "inside" 1.0
    (Dist.point_circle (Vec2.make 1.0 0.0) ~center:Vec2.zero ~radius:2.0)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rvu_geom"
    [
      ( "vec2",
        [
          Alcotest.test_case "basics" `Quick test_vec2_basics;
          Alcotest.test_case "zero-vector errors" `Quick test_vec2_zero_errors;
          Alcotest.test_case "polar" `Quick test_vec2_polar;
          Alcotest.test_case "lerp" `Quick test_vec2_lerp;
          qc prop_rotate_preserves_norm;
          qc prop_add_comm;
          qc prop_cross_antisym;
        ] );
      ( "mat2",
        [
          Alcotest.test_case "identity" `Quick test_mat2_identity;
          Alcotest.test_case "rotation" `Quick test_mat2_rotation;
          Alcotest.test_case "reflection" `Quick test_mat2_reflect;
          Alcotest.test_case "singular inverse" `Quick test_mat2_singular_inverse;
          qc prop_mat2_mul_apply;
          qc prop_mat2_inverse;
          qc prop_mat2_qr;
          qc prop_mat2_det_multiplicative;
        ] );
      ( "angle",
        [
          Alcotest.test_case "normalize" `Quick test_angle_normalize;
          Alcotest.test_case "diff" `Quick test_angle_diff;
          Alcotest.test_case "within_sweep" `Quick test_within_sweep;
          Alcotest.test_case "degrees" `Quick test_degrees;
        ] );
      ( "conformal",
        [
          Alcotest.test_case "scale validation" `Quick
            test_conformal_scale_validation;
          Alcotest.test_case "chirality" `Quick test_conformal_chirality;
          qc prop_conformal_matches_matrix;
          qc prop_conformal_compose;
          qc prop_conformal_inverse;
          qc prop_conformal_map_angle;
          qc prop_conformal_det_sign;
        ] );
      ( "dist",
        [
          Alcotest.test_case "point-segment cases" `Quick
            test_point_segment_cases;
          Alcotest.test_case "point-arc cases" `Quick test_point_arc_cases;
          Alcotest.test_case "point-circle" `Quick test_point_circle;
          qc prop_point_segment;
          qc prop_point_arc;
          qc prop_point_segment_param_consistent;
        ] );
    ]
