test/test_baselines.ml: Alcotest Asymmetric Dist Float List Printf QCheck QCheck_alcotest Random_walk Rvu_baselines Rvu_core Rvu_geom Rvu_numerics Rvu_search Rvu_sim Rvu_trajectory Seq Spiral Vec2
