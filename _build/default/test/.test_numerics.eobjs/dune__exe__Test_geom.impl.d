test/test_geom.ml: Alcotest Angle Conformal Dist Float Mat2 QCheck QCheck_alcotest Rvu_geom Rvu_numerics Vec2
