test/test_workload.ml: Alcotest Array Atlas Float Fun List Rng Rvu_core Rvu_geom Rvu_numerics Rvu_workload Scenario Sweep
