test/test_numerics.ml: Alcotest Brent Float Floats Kahan Lambert_w Lipschitz List QCheck QCheck_alcotest Result Rvu_numerics Stats
