test/test_trajectory.ml: Alcotest Conformal Drift Float List Program QCheck QCheck_alcotest Realize Result Rvu_geom Rvu_numerics Rvu_trajectory Segment Timed Vec2
