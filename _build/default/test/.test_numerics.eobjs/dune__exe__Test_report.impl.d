test/test_report.ml: Alcotest Csv Filename Float List Printf QCheck QCheck_alcotest Rvu_geom Rvu_numerics Rvu_report Rvu_trajectory Series String Svg Sys Table Timeline Vec2
