(* Tests for Rvu_search: the paper's Section 2.

   The central checks here are the cross-validations between the paper's
   algebra (Lemma 2, eq. (1)) and the actual trajectory generators, and the
   simulated verification of Lemma 1 / Theorem 1. *)

open Rvu_geom
open Rvu_search
open Rvu_trajectory

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let tol_eq = Rvu_numerics.Floats.equal ~tol:1e-9

(* ------------------------------------------------------------------ *)
(* Procedures: generator geometry *)

let test_search_circle_shape () =
  let p = Procedures.search_circle 2.0 in
  Alcotest.(check int) "3 segments" 3 (Program.segment_count p);
  check_bool "continuous" true (Program.check_continuity p = Ok ());
  check_bool "starts at origin" true
    (Vec2.equal (Program.position_at p 0.0) Vec2.zero);
  check_bool "ends at origin" true
    (Vec2.equal ~tol:1e-9
       (Program.position_at p (Program.duration p))
       Vec2.zero)

let test_search_circle_validation () =
  Alcotest.check_raises "zero radius"
    (Invalid_argument "Procedures.search_circle: radius <= 0") (fun () ->
      ignore (Procedures.search_circle 0.0 : Rvu_trajectory.Program.t))

let test_search_annulus_shape () =
  let p = Procedures.search_annulus ~inner:1.0 ~outer:2.0 ~rho:0.25 in
  (* m = ceil(1 / 0.5) = 2, so 3 circles of 3 segments. *)
  Alcotest.(check int) "segments" 9 (Program.segment_count p);
  Alcotest.(check int) "circle count" 3
    (Procedures.annulus_circle_count ~inner:1.0 ~outer:2.0 ~rho:0.25);
  check_bool "continuous" true (Program.check_continuity p = Ok ())

let test_search_annulus_validation () =
  Alcotest.check_raises "outer <= inner"
    (Invalid_argument "Procedures.search_annulus: outer <= inner") (fun () ->
      ignore (Procedures.search_annulus ~inner:2.0 ~outer:1.0 ~rho:0.1 : Rvu_trajectory.Program.t))

let test_annulus_coverage () =
  (* Every point of the annulus must come within rho of the trajectory. *)
  let inner = 1.0 and outer = 2.0 and rho = 0.25 in
  let p = Procedures.search_annulus ~inner ~outer ~rho in
  let segs = Program.take_segments max_int p in
  let dist_to_trajectory q =
    List.fold_left
      (fun acc seg ->
        Float.min acc
          (match (seg : Segment.t) with
          | Segment.Wait { pos; _ } -> Vec2.dist q pos
          | Segment.Line { src; dst } -> Dist.point_segment q src dst
          | Segment.Arc { center; radius; from; sweep } ->
              Dist.point_arc q ~center ~radius ~from ~sweep))
      Float.infinity segs
  in
  let ok = ref true in
  for i = 0 to 20 do
    for j = 0 to 20 do
      let radius = inner +. (float_of_int i /. 20.0 *. (outer -. inner)) in
      let angle = float_of_int j /. 20.0 *. Rvu_numerics.Floats.two_pi in
      let q = Vec2.of_polar ~radius ~angle in
      if dist_to_trajectory q > rho +. 1e-9 then ok := false
    done
  done;
  check_bool "all annulus points within rho" true !ok

let test_search_round_radii () =
  check_float "delta_{0,2}" 0.25 (Procedures.inner_radius ~k:2 ~j:0);
  check_float "delta_{3,2}" 2.0 (Procedures.inner_radius ~k:2 ~j:3);
  check_float "rho_{0,2}" (1.0 /. 128.0) (Procedures.granularity ~k:2 ~j:0);
  check_float "ratio invariant 2^(k+1)" 8.0
    (Rvu_numerics.Floats.sq (Procedures.inner_radius ~k:2 ~j:1)
    /. Procedures.granularity ~k:2 ~j:1)

let test_search_round_continuity () =
  let p = Procedures.search_round 2 in
  check_bool "continuous" true (Program.check_continuity p = Ok ());
  check_bool "ends at origin (wait there)" true
    (Vec2.equal (Program.position_at p (Program.duration p)) Vec2.zero)

let test_search_round_validation () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Procedures.search_round: k < 1") (fun () ->
      ignore (Procedures.search_round 0 : Rvu_trajectory.Program.t))

(* ------------------------------------------------------------------ *)
(* Timing: Lemma 2 closed forms vs the generators *)

let measured_duration p = Program.duration p

let test_lemma2_circle () =
  List.iter
    (fun delta ->
      check_bool
        (Printf.sprintf "circle time delta=%g" delta)
        true
        (tol_eq
           (Timing.search_circle_time delta)
           (measured_duration (Procedures.search_circle delta))))
    [ 0.01; 0.5; 1.0; 3.0; 100.0 ]

let test_lemma2_annulus () =
  List.iter
    (fun (inner, outer, rho) ->
      check_bool
        (Printf.sprintf "annulus time %g %g %g" inner outer rho)
        true
        (tol_eq
           (Timing.search_annulus_time ~inner ~outer ~rho)
           (measured_duration (Procedures.search_annulus ~inner ~outer ~rho))))
    [ (1.0, 2.0, 0.25); (0.5, 4.0, 0.1); (2.0, 2.5, 1.0); (1.0, 8.0, 0.03) ]

let test_lemma2_round () =
  for k = 1 to 7 do
    check_bool
      (Printf.sprintf "Search(%d) time" k)
      true
      (tol_eq (Timing.search_round_time k)
         (measured_duration (Procedures.search_round k)))
  done

let test_eq1_search_all () =
  for n = 1 to 7 do
    check_bool
      (Printf.sprintf "S(%d)" n)
      true
      (tol_eq (Timing.search_all_time n)
         (measured_duration (Algorithm4.search_all n)))
  done

let test_search_all_rev_time () =
  for n = 1 to 6 do
    check_bool
      (Printf.sprintf "SearchAllRev(%d)" n)
      true
      (tol_eq (Timing.search_all_time n)
         (measured_duration (Algorithm4.search_all_rev n)))
  done

let test_segment_counts () =
  for k = 1 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "Search(%d) segments" k)
      (Timing.search_round_segments k)
      (Program.segment_count (Procedures.search_round k))
  done;
  for n = 1 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "SearchAll(%d) segments" n)
      (Timing.search_all_segments n)
      (Program.segment_count (Algorithm4.search_all n))
  done

let test_search_all_order () =
  (* search_all runs rounds ascending, search_all_rev descending: round k
     starts with a line out to radius 2^(-k). *)
  let first_line p =
    match Program.take_segments 1 p with
    | [ Segment.Line { dst; _ } ] -> Vec2.norm dst
    | _ -> Alcotest.fail "expected a leading line segment"
  in
  check_float "SearchAll starts with round 1" 0.5
    (first_line (Algorithm4.search_all 3));
  check_float "SearchAllRev starts with round 3" 0.125
    (first_line (Algorithm4.search_all_rev 3))

(* ------------------------------------------------------------------ *)
(* Predict: Lemmas 1 and 3 *)

let test_discovery_round_basics () =
  Alcotest.(check int) "visible at start" 0 (Predict.discovery_round ~d:0.5 ~r:1.0);
  check_bool "covering round found" true (Predict.discovery_round ~d:2.0 ~r:0.1 >= 1)

let test_covers () =
  check_bool "covers" true
    (Predict.covers ~k:3 ~j:4
       ~d:(Procedures.inner_radius ~k:3 ~j:4 *. 1.5)
       ~r:(Procedures.granularity ~k:3 ~j:4));
  check_bool "rho too coarse" false
    (Predict.covers ~k:3 ~j:4
       ~d:(Procedures.inner_radius ~k:3 ~j:4 *. 1.5)
       ~r:(Procedures.granularity ~k:3 ~j:4 /. 2.0));
  check_bool "j out of range" false (Predict.covers ~k:2 ~j:4 ~d:1.0 ~r:1.0)

let test_lemma3_constructed () =
  (* Instances placed exactly on a sub-round's band: discovery happens by
     that round and the Lemma 3 ratio bound holds for the reported round. *)
  List.iter
    (fun (k, j) ->
      let d = Procedures.inner_radius ~k ~j *. 1.2 in
      let r = Procedures.granularity ~k ~j in
      let k_found = Predict.discovery_round ~d ~r in
      check_bool (Printf.sprintf "k=%d j=%d: found by k" k j) true (k_found <= k);
      check_bool
        (Printf.sprintf "k=%d j=%d: lemma3 ratio" k j)
        true
        (d *. d /. r >= Predict.ratio_lower_bound k_found))
    [ (2, 1); (3, 4); (4, 2); (5, 7); (6, 11) ]

let test_paper_witness_constraints () =
  List.iter
    (fun (d, r) ->
      let k, j = Predict.paper_witness ~d ~r in
      check_bool
        (Printf.sprintf "witness valid d=%g r=%g" d r)
        true
        (j >= 0
        && j <= (2 * k) - 1
        && Procedures.inner_radius ~k ~j:(j + 1) >= d
        && Procedures.granularity ~k ~j <= r);
      check_bool
        (Printf.sprintf "predictor <= witness d=%g r=%g" d r)
        true
        (Predict.discovery_round ~d ~r <= k))
    [ (2.0, 0.1); (1.0, 0.01); (4.0, 0.5); (8.0, 0.01); (1.5, 0.002) ]

let prop_discovery_round_monotone_in_r =
  (* A larger visibility radius can never delay discovery. *)
  QCheck.Test.make ~name:"predict: discovery round monotone in r" ~count:200
    QCheck.(
      triple (float_range 0.7 8.0) (float_range 0.002 0.3) (float_range 1.0 8.0))
    (fun (d, r, factor) ->
      QCheck.assume (d > r *. factor);
      Predict.discovery_round ~d ~r:(r *. factor)
      <= Predict.discovery_round ~d ~r)

let test_program_generators_are_lazy () =
  (* Building the infinite Algorithm 4 program and taking one segment must
     not force later rounds: round generation is observable through this
     counter. *)
  let forced = ref 0 in
  let gen k =
    incr forced;
    Procedures.search_round k
  in
  let p = Program.rounds_from gen ~first:1 in
  let (_ : Segment.t list) = Program.take_segments 1 p in
  check_bool "only the first round was forced" true (!forced <= 2)

let prop_discovery_round_is_covering =
  QCheck.Test.make ~name:"predict: reported round covers, previous does not"
    ~count:200
    QCheck.(pair (float_range 0.7 10.0) (float_range 0.001 0.4))
    (fun (d, r) ->
      QCheck.assume (d > r);
      let k = Predict.discovery_round ~d ~r in
      k >= 1
      && List.exists (fun j -> Predict.covers ~k ~j ~d ~r) (List.init (2 * k) Fun.id)
      && (k = 1
         || not
              (List.exists
                 (fun j -> Predict.covers ~k:(k - 1) ~j ~d ~r)
                 (List.init (2 * (k - 1)) Fun.id))))

(* ------------------------------------------------------------------ *)
(* Bounds + simulation: Lemma 1 and Theorem 1 verified end-to-end *)

let run_search ~d ~r ~bearing =
  let target = Vec2.of_polar ~radius:d ~angle:bearing in
  Rvu_sim.Search_engine.run ~program:(Algorithm4.program ()) ~target ~r ()

let test_search_finds_target () =
  let outcome, _ = run_search ~d:2.0 ~r:0.05 ~bearing:1.1 in
  match outcome with
  | Rvu_sim.Search_engine.Found t -> check_bool "positive time" true (t > 0.0)
  | _ -> Alcotest.fail "target not found"

let test_search_immediate_when_visible () =
  let outcome, _ = run_search ~d:0.5 ~r:1.0 ~bearing:0.3 in
  match outcome with
  | Rvu_sim.Search_engine.Found t -> check_float "found at 0" 0.0 t
  | _ -> Alcotest.fail "should see the target immediately"

let prop_theorem1_bound =
  QCheck.Test.make
    ~name:"theorem 1 (repaired): simulated search within the safe bound"
    ~count:25
    QCheck.(
      triple (float_range 0.8 6.0) (float_range 0.01 0.2) (float_range 0.0 6.28))
    (fun (d, r, bearing) ->
      QCheck.assume (d *. d /. r >= 4.0);
      match run_search ~d ~r ~bearing with
      | Rvu_sim.Search_engine.Found t, _ ->
          t < Bounds.search_time_safe ~d ~r
          && t <= Bounds.time_through_round (Predict.discovery_round ~d ~r)
      | _ -> false)

let test_lemma3_paper_discrepancy () =
  (* Regression capture of the discrepancy documented in Bounds: this
     instance is first covered in round 6 but has d^2/r < 2^7, violating
     Lemma 3 as printed; the simulated search time exceeds the printed
     Theorem 1 bound yet respects the repaired one. *)
  let d = 2.05881121861 and r = 0.0575298528486 in
  let k = Predict.discovery_round ~d ~r in
  Alcotest.(check int) "covered first in round 6" 6 k;
  check_bool "violates printed lemma 3" true
    (d *. d /. r < Predict.ratio_lower_bound k);
  check_bool "satisfies repaired lemma 3" true
    (d *. d /. r > Predict.ratio_lower_bound_minimal k);
  match run_search ~d ~r ~bearing:4.17983844609 with
  | Rvu_sim.Search_engine.Found t, _ ->
      check_bool "exceeds printed theorem 1 bound" true
        (t > Bounds.search_time ~d ~r);
      check_bool "within repaired bound" true (t < Bounds.search_time_safe ~d ~r);
      check_bool "within lemma 1 round completion" true
        (t <= Bounds.time_through_round k)
  | _ -> Alcotest.fail "target must be found"

let prop_lemma1_discovery_round =
  QCheck.Test.make
    ~name:"lemma 1: target found no later than the predicted round" ~count:25
    QCheck.(
      triple (float_range 0.8 6.0) (float_range 0.01 0.2) (float_range 0.0 6.28))
    (fun (d, r, bearing) ->
      QCheck.assume (d > r);
      let k = Predict.discovery_round ~d ~r in
      match run_search ~d ~r ~bearing with
      | Rvu_sim.Search_engine.Found t, _ -> t <= Timing.search_all_time k
      | _ -> false)

let test_bounds_validation () =
  Alcotest.check_raises "bad instance"
    (Invalid_argument "Bounds.search_time: d, r > 0 required") (fun () ->
      ignore (Bounds.search_time ~d:0.0 ~r:1.0))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rvu_search"
    [
      ( "procedures",
        [
          Alcotest.test_case "circle shape" `Quick test_search_circle_shape;
          Alcotest.test_case "circle validation" `Quick test_search_circle_validation;
          Alcotest.test_case "annulus shape" `Quick test_search_annulus_shape;
          Alcotest.test_case "annulus validation" `Quick test_search_annulus_validation;
          Alcotest.test_case "annulus coverage" `Quick test_annulus_coverage;
          Alcotest.test_case "round radii" `Quick test_search_round_radii;
          Alcotest.test_case "round continuity" `Quick test_search_round_continuity;
          Alcotest.test_case "round validation" `Quick test_search_round_validation;
        ] );
      ( "timing (lemma 2)",
        [
          Alcotest.test_case "circle closed form" `Quick test_lemma2_circle;
          Alcotest.test_case "annulus closed form" `Quick test_lemma2_annulus;
          Alcotest.test_case "round closed form" `Quick test_lemma2_round;
          Alcotest.test_case "eq (1): S(n)" `Quick test_eq1_search_all;
          Alcotest.test_case "reversed sweep time" `Quick test_search_all_rev_time;
          Alcotest.test_case "segment counts" `Quick test_segment_counts;
          Alcotest.test_case "round order" `Quick test_search_all_order;
        ] );
      ( "predict (lemmas 1, 3)",
        [
          Alcotest.test_case "discovery basics" `Quick test_discovery_round_basics;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "lemma 3 constructed" `Quick test_lemma3_constructed;
          Alcotest.test_case "paper witness" `Quick test_paper_witness_constraints;
          Alcotest.test_case "generators are lazy" `Quick
            test_program_generators_are_lazy;
          qc prop_discovery_round_is_covering;
          qc prop_discovery_round_monotone_in_r;
        ] );
      ( "theorem 1 (simulated)",
        [
          Alcotest.test_case "finds target" `Quick test_search_finds_target;
          Alcotest.test_case "immediate visibility" `Quick
            test_search_immediate_when_visible;
          Alcotest.test_case "bound validation" `Quick test_bounds_validation;
          Alcotest.test_case "lemma 3 paper discrepancy" `Quick
            test_lemma3_paper_discrepancy;
          qc prop_theorem1_bound;
          qc prop_lemma1_discovery_round;
        ] );
    ]
