(* Tests for Rvu_report: tables, CSV, series and timelines. *)

open Rvu_report

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_alignment () =
  let t =
    Table.create
      ~columns:[ Table.column ~align:Table.Left "name"; Table.column "value" ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "12345" ];
  let out = Table.render t in
  check_bool "left-aligned label" true (contains out "| alpha |");
  check_bool "right-aligned number" true (contains out "|     1 |");
  check_bool "header present" true (contains out "| name  |")

let test_table_rule () =
  let t = Table.create ~columns:[ Table.column "x" ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let out = Table.render t in
  (* outer top, under-header, mid, outer bottom = 4 rules *)
  let rules =
    List.length
      (List.filter (fun l -> String.length l > 0 && l.[0] = '+')
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "rule count" 4 rules

let test_table_mismatch () =
  let t = Table.create ~columns:[ Table.column "x"; Table.column "y" ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_empty_columns () =
  Alcotest.check_raises "no columns"
    (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create ~columns:[]))

let prop_table_lines_equal_width =
  QCheck.Test.make ~name:"table: every rendered line has the same width"
    ~count:100
    QCheck.(
      pair (int_range 1 5)
        (list_of_size (QCheck.Gen.int_range 0 8) small_printable_string))
    (fun (cols, cells) ->
      let t =
        Table.create
          ~columns:(List.init cols (fun i -> Table.column (Printf.sprintf "c%d" i)))
      in
      let rec rows = function
        | [] -> ()
        | rest ->
            let row = List.filteri (fun i _ -> i < cols) (rest @ List.init cols (fun _ -> "x")) in
            Table.add_row t (List.map (String.map (fun c -> if c = '\n' then ' ' else c)) row);
            rows (if List.length rest > cols then List.filteri (fun i _ -> i >= cols) rest else [])
      in
      rows cells;
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' (Table.render t))
      in
      match lines with
      | [] -> false
      | first :: _ ->
          let w = String.length first in
          List.for_all (fun l -> String.length l = w) lines)

let test_table_roundtrip_csv () =
  let t = Table.create ~columns:[ Table.column "a"; Table.column "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "3"; "4" ];
  Alcotest.(check (list string)) "headers" [ "a"; "b" ] (Table.headers t);
  check_bool "rows skip rules" true (Table.rows t = [ [ "1"; "2" ]; [ "3"; "4" ] ])

let test_formatters () =
  check_string "fstr" "3.142" (Table.fstr 3.14159);
  check_string "istr" "42" (Table.istr 42);
  check_string "precise" "3.14159" (Table.fstr_precise 3.14159)

(* ------------------------------------------------------------------ *)
(* Csv *)

let test_csv_escape () =
  check_string "plain" "abc" (Csv.escape "abc");
  check_string "comma" "\"a,b\"" (Csv.escape "a,b");
  check_string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check_string "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_row () =
  check_string "row" "a,\"b,c\",d" (Csv.row [ "a"; "b,c"; "d" ])

let test_csv_write () =
  let path = Filename.temp_file "rvu_test" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  check_bool "contents" true (lines = [ "x,y"; "1,2"; "3,4" ])

(* ------------------------------------------------------------------ *)
(* Series *)

let test_bar_chart () =
  let out =
    Series.bar_chart ~title:"growth" [ ("a", 1.0); ("b", 10.0); ("c", 100.0) ]
  in
  check_bool "title" true (contains out "growth");
  check_bool "labels" true (contains out "a" && contains out "c");
  (* log scale: bar for c should be at most ~3x bar for a despite 100x value *)
  let bar label =
    let lines = String.split_on_char '\n' out in
    let line = List.find (fun l -> contains l (label ^ " ")) lines in
    String.fold_left (fun acc ch -> if ch = '#' then acc + 1 else acc) 0 line
  in
  check_bool "log compression" true (bar "c" <= 8 * bar "a");
  check_bool "monotone" true (bar "a" < bar "b" && bar "b" < bar "c")

let test_bar_chart_zero () =
  let out = Series.bar_chart ~title:"zeros" [ ("z", 0.0) ] in
  check_bool "renders" true (contains out "z")

let test_xy () =
  let out =
    Series.xy ~x_header:"n" ~y_headers:[ "measured"; "bound" ]
      [ (1.0, [ 2.0; 3.0 ]); (2.0, [ 4.0; 6.0 ]) ]
  in
  check_bool "headers" true (contains out "measured" && contains out "bound");
  check_bool "values" true (contains out "4");
  Alcotest.check_raises "ragged"
    (Invalid_argument "Series.xy: ragged rows") (fun () ->
      ignore (Series.xy [ (1.0, [ 1.0 ]); (2.0, [ 1.0; 2.0 ]) ]))

(* ------------------------------------------------------------------ *)
(* Svg *)

let timed shape =
  Rvu_trajectory.Timed.make ~t0:0.0
    ~dur:(Rvu_trajectory.Segment.duration shape)
    ~shape

let test_svg_of_timed () =
  let open Rvu_geom in
  let segs =
    [
      timed (Rvu_trajectory.Segment.line ~src:Vec2.zero ~dst:(Vec2.make 2.0 0.0));
      timed
        (Rvu_trajectory.Segment.arc ~center:Vec2.zero ~radius:2.0 ~from:0.0
           ~sweep:Float.pi);
      timed (Rvu_trajectory.Segment.wait ~at:(Vec2.make (-2.0) 0.0) ~dur:1.0);
    ]
  in
  match Svg.of_timed segs with
  | Svg.Path { points; _ } ->
      (match points with
      | Svg.Move (0.0, 0.0) :: Svg.Line_to (2.0, 0.0) :: rest ->
          check_bool "arc follows line without a jump" true
            (List.for_all (function Svg.Arc_to _ -> true | _ -> false) rest);
          check_bool "half turn splits into sub-arcs" true (List.length rest >= 2);
          (match List.rev rest with
          | Svg.Arc_to { stop = x, y; _ } :: _ ->
              check_bool "arc ends at (-2, 0)" true
                (Rvu_numerics.Floats.equal ~tol:1e-9 x (-2.0)
                && Rvu_numerics.Floats.is_zero ~tol:1e-9 y)
          | _ -> Alcotest.fail "expected trailing arc")
      | _ -> Alcotest.fail "expected Move; Line_to; arcs")
  | _ -> Alcotest.fail "of_timed returns a path"

let test_svg_render () =
  let open Rvu_geom in
  let shapes =
    [
      Svg.of_timed
        [ timed (Rvu_trajectory.Segment.line ~src:Vec2.zero ~dst:(Vec2.make 1.0 1.0)) ];
      Svg.Disc { center = (0.0, 0.0); radius = 0.1; color = "red" };
      Svg.Ring { center = (1.0, 1.0); radius = 0.2; color = "green" };
    ]
  in
  let doc = Svg.render shapes in
  check_bool "svg root" true (contains doc "<svg xmlns");
  check_bool "has path" true (contains doc "<path d=\"M ");
  check_bool "has circles" true (contains doc "<circle");
  check_bool "closes" true (contains doc "</svg>");
  Alcotest.check_raises "empty drawing"
    (Invalid_argument "Svg.render: nothing to draw") (fun () ->
      ignore (Svg.render []))

let prop_svg_arc_flags_encode_center =
  (* Recover each sub-arc's circle center from its endpoints, radius and
     orientation flag (sub-arcs are < half a turn, so the flag picks one of
     the two candidate centers: left of the chord for ccw, right for cw)
     and check it equals the original arc's center. This pins down the
     orientation encoding the renderer relies on. *)
  let open Rvu_geom in
  QCheck.Test.make ~name:"svg: arc pieces encode the correct circle" ~count:200
    QCheck.(
      pair
        (pair (pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
           (float_range 0.3 4.0))
        (pair (float_range 0.0 6.28)
           (oneof [ float_range 0.2 6.28; float_range (-6.28) (-0.2) ])))
    (fun (((cx, cy), radius), (from, sweep)) ->
      let center = Vec2.make cx cy in
      let seg =
        Rvu_trajectory.Timed.make ~t0:0.0
          ~dur:(radius *. Float.abs sweep)
          ~shape:(Rvu_trajectory.Segment.arc ~center ~radius ~from ~sweep)
      in
      match Svg.of_timed [ seg ] with
      | Svg.Path { points = Svg.Move start :: arcs; _ } ->
          let ok = ref true in
          let cursor = ref start in
          List.iter
            (fun piece ->
              match piece with
              | Svg.Arc_to { radius = r; ccw; stop; large; _ } ->
                  let a = Vec2.make (fst !cursor) (snd !cursor) in
                  let b = Vec2.make (fst stop) (snd stop) in
                  let chord = Vec2.sub b a in
                  let half = Vec2.norm chord /. 2.0 in
                  if large || half > r +. 1e-9 then ok := false
                  else begin
                    let h = sqrt (Float.max 0.0 ((r *. r) -. (half *. half))) in
                    let mid = Vec2.lerp a b 0.5 in
                    let n = Vec2.normalize (Vec2.perp chord) in
                    let recovered =
                      Vec2.add mid (Vec2.scale (if ccw then h else -.h) n)
                    in
                    if not (Vec2.equal ~tol:1e-6 recovered center) then
                      ok := false
                  end;
                  cursor := stop
              | Svg.Move p | Svg.Line_to p -> cursor := p)
            arcs;
          !ok
      | _ -> false)

let test_svg_write () =
  let path = Filename.temp_file "rvu_test" ".svg" in
  Svg.write ~path [ Svg.Disc { center = (0.0, 0.0); radius = 1.0; color = "blue" } ];
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  check_bool "file starts with svg" true (contains first "<svg")

(* ------------------------------------------------------------------ *)
(* Timeline *)

let test_timeline_renders () =
  let lanes =
    [
      { Timeline.name = "R"; intervals = [ (0.0, 50.0, 'I'); (50.0, 100.0, 'A') ] };
      { Timeline.name = "R'"; intervals = [ (0.0, 100.0, 'I') ] };
    ]
  in
  let out = Timeline.render ~width:40 ~warp:`Linear ~t_max:100.0 lanes in
  check_bool "lane names" true (contains out "R " && contains out "R'");
  check_bool "both glyphs" true (contains out "I" && contains out "A")

let test_timeline_clips () =
  let lanes =
    [ { Timeline.name = "x"; intervals = [ (-10.0, 200.0, '#') ] } ]
  in
  let out = Timeline.render ~width:20 ~warp:`Linear ~t_max:100.0 lanes in
  check_bool "clipped render" true (contains out "#")

let test_timeline_validation () =
  Alcotest.check_raises "bad t_max"
    (Invalid_argument "Timeline.render: t_max <= 0") (fun () ->
      ignore (Timeline.render ~t_max:0.0 []))

let () =
  Alcotest.run "rvu_report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "rules" `Quick test_table_rule;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "empty columns" `Quick test_table_empty_columns;
          Alcotest.test_case "formatters" `Quick test_formatters;
          Alcotest.test_case "rows/headers accessors" `Quick test_table_roundtrip_csv;
          QCheck_alcotest.to_alcotest prop_table_lines_equal_width;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "row" `Quick test_csv_row;
          Alcotest.test_case "write" `Quick test_csv_write;
        ] );
      ( "series",
        [
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "zero values" `Quick test_bar_chart_zero;
          Alcotest.test_case "xy" `Quick test_xy;
        ] );
      ( "svg",
        [
          Alcotest.test_case "of_timed" `Quick test_svg_of_timed;
          Alcotest.test_case "render" `Quick test_svg_render;
          Alcotest.test_case "write" `Quick test_svg_write;
          QCheck_alcotest.to_alcotest prop_svg_arc_flags_encode_center;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "renders" `Quick test_timeline_renders;
          Alcotest.test_case "clips" `Quick test_timeline_clips;
          Alcotest.test_case "validation" `Quick test_timeline_validation;
        ] );
    ]
