(* rvu — command-line front end for the rendezvous library.

   Subcommands:
     simulate     run a two-robot rendezvous instance
     search       run the single-robot search problem (Section 2)
     feasibility  classify an attribute vector (Theorem 4)
     schedule     print the Algorithm 7 phase schedule (Lemma 8)
     bound        print every applicable analytic bound for an instance
     sweep        run a distance sweep as a parallel batch (--jobs)
     gather       simulate multi-robot gathering
     serve        long-running evaluation server (NDJSON over stdio or TCP)
     loadgen      replay a scenario mix against the server; report latency *)

open Cmdliner
open Rvu_geom
open Rvu_core

(* ------------------------------------------------------------------ *)
(* Shared argument bundles *)

(* Count-like flags (--points, --jobs, --rounds, --requests, ...) share one
   validated converter so every subcommand rejects zero and negatives the
   same way, at parse time. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | None ->
        Error
          (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let v_arg =
  Arg.(value & opt float 1.0 & info [ "speed" ] ~docv:"V" ~doc:"Speed of robot R'.")

let tau_arg =
  Arg.(value & opt float 1.0 & info [ "tau"; "clock" ] ~docv:"TAU" ~doc:"Time unit of robot R'.")

let phi_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "phi"; "rotation" ] ~docv:"PHI"
        ~doc:"Compass rotation of R' in radians.")

let mirror_arg =
  Arg.(
    value & flag
    & info [ "mirror"; "opposite-chirality" ]
        ~doc:"R' disagrees with R on the +y direction (chi = -1).")

let d_arg =
  Arg.(value & opt float 2.0 & info [ "d"; "distance" ] ~docv:"D" ~doc:"Initial distance.")

let bearing_arg =
  Arg.(
    value & opt float 0.9
    & info [ "bearing" ] ~docv:"THETA" ~doc:"Direction of R' as seen from R (radians).")

let r_arg =
  Arg.(value & opt float 0.1 & info [ "r"; "visibility" ] ~docv:"R" ~doc:"Visibility radius.")

let horizon_arg =
  Arg.(
    value & opt float 1e8
    & info [ "horizon" ] ~docv:"T"
        ~doc:"Give up after this much global time (infeasible instances never meet).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-phase tracing spans into $(i,FILE) in Chrome \
           trace-event format (open it in chrome://tracing or \
           ui.perfetto.dev).")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      (try Rvu_obs.Trace.enable ~path () with
      | Sys_error msg ->
          Format.eprintf "rvu: cannot open trace file: %s@." msg;
          exit 1);
      Fun.protect ~finally:Rvu_obs.Trace.close f

let attributes v tau phi mirror =
  Attributes.make ~v ~tau ~phi
    ~chi:(if mirror then Attributes.Opposite else Attributes.Same)
    ()

let attrs_term = Term.(const attributes $ v_arg $ tau_arg $ phi_arg $ mirror_arg)

let describe_verdict = function
  | Feasibility.Feasible Feasibility.Different_clocks ->
      "feasible: the clocks differ (Theorem 3 applies)"
  | Feasibility.Feasible Feasibility.Different_speeds ->
      "feasible: the speeds differ (Theorem 2 applies)"
  | Feasibility.Feasible Feasibility.Rotated_same_chirality ->
      "feasible: equal chirality with rotated compasses (Theorem 2 applies)"
  | Feasibility.Infeasible ->
      "infeasible: no symmetric deterministic algorithm can guarantee rendezvous"

(* ------------------------------------------------------------------ *)
(* simulate *)

let draw_svg ~file ~program ~attrs ~displacement ~r ~t_end ~meeting =
  let until stream =
    List.of_seq
      (Seq.take_while
         (fun (seg : Rvu_trajectory.Timed.t) -> seg.Rvu_trajectory.Timed.t0 < t_end)
         stream)
  in
  let r_segs =
    until (Rvu_trajectory.Realize.realize Rvu_trajectory.Realize.identity program)
  in
  let r'_segs =
    until (Rvu_trajectory.Realize.realize (Frame.clocked attrs ~displacement) program)
  in
  let marker p color =
    Rvu_report.Svg.Disc
      { center = (p.Vec2.x, p.Vec2.y); radius = 0.04 *. Vec2.norm displacement; color }
  in
  let shapes =
    [
      Rvu_report.Svg.of_timed ~color:"#1f77b4" r_segs;
      Rvu_report.Svg.of_timed ~color:"#d62728" r'_segs;
      marker Vec2.zero "#1f77b4";
      marker displacement "#d62728";
    ]
    @
    match meeting with
    | None -> []
    | Some p ->
        [
          marker p "#2ca02c";
          Rvu_report.Svg.Ring { center = (p.Vec2.x, p.Vec2.y); radius = r; color = "#2ca02c" };
        ]
  in
  Rvu_report.Svg.write ~path:file shapes;
  Format.printf "trajectories written to %s@." file

let simulate attrs d bearing r horizon use_alg4 svg_file =
  let displacement = Vec2.of_polar ~radius:d ~angle:bearing in
  let inst = Rvu_sim.Engine.instance ~attributes:attrs ~displacement ~r in
  let program =
    if use_alg4 then Rvu_search.Algorithm4.program () else Universal.program ()
  in
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "%s@." (describe_verdict (Feasibility.classify attrs));
  let res = Rvu_sim.Engine.run ~horizon ~program inst in
  (match res.Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t ->
      Format.printf "rendezvous at t = %.6g@." t;
      (match Phases.phase_at t with
      | Some (n, p) when not use_alg4 ->
          Format.printf "  (during schedule round %d, %s phase)@." n
            (match p with Phases.Active -> "active" | Phases.Inactive -> "inactive")
      | _ -> ())
  | Rvu_sim.Detector.Horizon h -> Format.printf "no rendezvous by t = %g@." h
  | Rvu_sim.Detector.Stream_end t -> Format.printf "program ended at t = %g@." t);
  (match (res.Rvu_sim.Engine.bound.Universal.round, res.Rvu_sim.Engine.bound.Universal.time) with
  | Some k, Some b ->
      Format.printf "analytic guarantee: round %d, time %.6g@." k b
  | _ -> ());
  Format.printf "segment-pair intervals scanned: %d; closest sampled approach: %.6g@."
    res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals
    res.Rvu_sim.Engine.stats.Rvu_sim.Detector.min_distance;
  match svg_file with
  | None -> ()
  | Some file ->
      let t_end, meeting =
        match res.Rvu_sim.Engine.outcome with
        | Rvu_sim.Detector.Hit t ->
            (t, Some (Rvu_trajectory.Realize.position Rvu_trajectory.Realize.identity program t))
        | Rvu_sim.Detector.Horizon h -> (Float.min h 5000.0, None)
        | Rvu_sim.Detector.Stream_end t -> (t, None)
      in
      draw_svg ~file ~program ~attrs ~displacement ~r ~t_end ~meeting

let simulate_cmd =
  let alg4 =
    Arg.(
      value & flag
      & info [ "algorithm4" ]
          ~doc:"Run Algorithm 4 (no waiting phases) instead of the universal Algorithm 7.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Write both robots' trajectories (up to the meeting) as an SVG figure.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a two-robot rendezvous instance.")
    Term.(
      const simulate $ attrs_term $ d_arg $ bearing_arg $ r_arg $ horizon_arg
      $ alg4 $ svg)

(* ------------------------------------------------------------------ *)
(* search *)

let search d bearing r horizon =
  let target = Vec2.of_polar ~radius:d ~angle:bearing in
  Format.printf "searching for a target at distance %g, visibility %g@." d r;
  match
    Rvu_sim.Search_engine.run ~horizon
      ~program:(Rvu_search.Algorithm4.program ())
      ~target ~r ()
  with
  | Rvu_sim.Search_engine.Found t, stats ->
      Format.printf "found at t = %.6g (%d segments walked)@." t
        stats.Rvu_sim.Search_engine.segments;
      let round = Rvu_search.Predict.discovery_round ~d ~r in
      Format.printf "predicted discovery round: %d (completion time %.6g)@."
        round
        (Rvu_search.Bounds.time_through_round round);
      Format.printf "Theorem 1 bound (as printed): %.6g; repaired: %.6g@."
        (Rvu_search.Bounds.search_time ~d ~r)
        (Rvu_search.Bounds.search_time_safe ~d ~r)
  | Rvu_sim.Search_engine.Horizon h, _ ->
      Format.printf "not found by t = %g@." h
  | Rvu_sim.Search_engine.Program_end t, _ ->
      Format.printf "program ended at t = %g@." t

let search_cmd =
  Cmd.v
    (Cmd.info "search" ~doc:"Run the Section 2 search problem (Algorithm 4).")
    Term.(const search $ d_arg $ bearing_arg $ r_arg $ horizon_arg)

(* ------------------------------------------------------------------ *)
(* feasibility *)

let feasibility attrs =
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "%s@." (describe_verdict (Feasibility.classify attrs));
  match Feasibility.adversarial_direction attrs with
  | Some dir ->
      Format.printf
        "adversarial displacement direction (never approached): %a@." Vec2.pp
        dir
  | None -> ()

let feasibility_cmd =
  Cmd.v
    (Cmd.info "feasibility" ~doc:"Classify an attribute vector per Theorem 4.")
    Term.(const feasibility $ attrs_term)

(* ------------------------------------------------------------------ *)
(* schedule *)

let schedule rounds =
  let t = Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ "round n"; "S(n)"; "I(n)"; "A(n)"; "round end"; "segments" ])
  in
  for n = 1 to rounds do
    Rvu_report.Table.add_row t
      [
        Rvu_report.Table.istr n;
        Rvu_report.Table.fstr (Phases.s n);
        Rvu_report.Table.fstr (Phases.inactive_start n);
        Rvu_report.Table.fstr (Phases.active_start n);
        Rvu_report.Table.fstr (Phases.round_end n);
        Rvu_report.Table.istr (2 * Rvu_search.Timing.search_all_segments n + 1);
      ]
  done;
  Rvu_report.Table.print t

let schedule_cmd =
  let rounds =
    Arg.(
      value & opt positive_int 8
      & info [ "rounds" ] ~docv:"N" ~doc:"Rounds to list.")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Print the Algorithm 7 phase schedule closed forms (Lemma 8).")
    Term.(const schedule $ rounds)

(* ------------------------------------------------------------------ *)
(* bound *)

let bound attrs d r =
  Format.printf "R' attributes: %a; d = %g, r = %g@." Attributes.pp attrs d r;
  let g = Universal.guarantee attrs ~d ~r in
  Format.printf "%s@." (describe_verdict g.Universal.verdict);
  (match (g.Universal.round, g.Universal.time) with
  | Some k, Some t ->
      Format.printf "universal (Algorithm 7) guarantee: round %d, time %.6g@." k t
  | _ -> ());
  (match Bounds.symmetric_clock_time attrs ~d ~r with
  | Some t ->
      Format.printf
        "Theorem 2 bound for Algorithm 4 (as printed): %.6g; repaired: %.6g@."
        t
        (Option.get (Bounds.symmetric_clock_time_safe attrs ~d ~r))
  | None -> ());
  if not (Rvu_numerics.Floats.equal attrs.Attributes.tau 1.0) then begin
    let k = Bounds.asymmetric_round attrs ~d ~r in
    Format.printf "Theorem 3 / Lemma 13 bound: round k* = %d, time %.6g@." k
      (Bounds.asymmetric_time attrs ~d ~r)
  end

let bound_cmd =
  Cmd.v
    (Cmd.info "bound" ~doc:"Print every applicable analytic bound.")
    Term.(const bound $ attrs_term $ d_arg $ r_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep attrs d_lo d_hi points bearing r horizon jobs trace =
  with_trace trace @@ fun () ->
  let ds = Rvu_workload.Sweep.linspace ~lo:d_lo ~hi:d_hi ~n:points in
  let instances =
    Array.of_list
      (List.map
         (fun d ->
           Rvu_sim.Engine.instance ~attributes:attrs
             ~displacement:(Vec2.of_polar ~radius:d ~angle:bearing)
             ~r)
         ds)
  in
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "sweeping d over %d point(s) in [%g, %g], r = %g@."
    (List.length ds) d_lo d_hi r;
  let results = Rvu_exec.Batch.run ~horizon ~jobs instances in
  let t =
    Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ "d"; "outcome"; "t"; "bound"; "intervals" ])
  in
  Array.iteri
    (fun i res ->
      let d = List.nth ds i in
      let outcome, time =
        match res.Rvu_sim.Engine.outcome with
        | Rvu_sim.Detector.Hit t -> ("hit", Rvu_report.Table.fstr t)
        | Rvu_sim.Detector.Horizon h -> ("horizon", Rvu_report.Table.fstr h)
        | Rvu_sim.Detector.Stream_end t ->
            ("stream end", Rvu_report.Table.fstr t)
      in
      let bound =
        match res.Rvu_sim.Engine.bound.Universal.time with
        | Some b -> Rvu_report.Table.fstr b
        | None -> "-"
      in
      Rvu_report.Table.add_row t
        [
          Rvu_report.Table.fstr d; outcome; time; bound;
          Rvu_report.Table.istr
            res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals;
        ])
    results;
  Rvu_report.Table.print t

let sweep_cmd =
  let d_lo =
    Arg.(value & opt float 1.0 & info [ "d-lo" ] ~docv:"D" ~doc:"Smallest initial distance.")
  in
  let d_hi =
    Arg.(value & opt float 4.0 & info [ "d-hi" ] ~docv:"D" ~doc:"Largest initial distance.")
  in
  let points =
    Arg.(
      value & opt positive_int 8
      & info [ "points" ] ~docv:"N" ~doc:"Number of sweep points.")
  in
  let jobs =
    Arg.(
      value
      & opt positive_int (Rvu_exec.Pool.recommended_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains to run the batch on (default: all cores). Results are \
             bit-identical for every job count.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a batch of rendezvous instances over a distance sweep, in \
          parallel.")
    Term.(
      const sweep $ attrs_term $ d_lo $ d_hi $ points $ bearing_arg $ r_arg
      $ horizon_arg $ jobs $ trace_arg)

(* ------------------------------------------------------------------ *)
(* gather *)

let parse_robot spec =
  (* v,x,y — a robot with speed v starting at (x, y). *)
  match String.split_on_char ',' spec with
  | [ v; x; y ] -> begin
      match (float_of_string_opt v, float_of_string_opt x, float_of_string_opt y) with
      | Some v, Some x, Some y ->
          Ok { Rvu_sim.Multi.attributes = Attributes.make ~v (); start = Vec2.make x y }
      | _ -> Error (`Msg (Printf.sprintf "bad robot %S (want v,x,y)" spec))
    end
  | _ -> Error (`Msg (Printf.sprintf "bad robot %S (want v,x,y)" spec))

let robot_conv =
  Arg.conv
    ( parse_robot,
      fun ppf robot ->
        Format.fprintf ppf "%g,%a"
          robot.Rvu_sim.Multi.attributes.Attributes.v Vec2.pp
          robot.Rvu_sim.Multi.start )

let gather robots r horizon =
  let robots =
    { Rvu_sim.Multi.attributes = Attributes.reference; start = Vec2.zero }
    :: robots
  in
  Format.printf "swarm of %d robots (reference at the origin), r = %g@."
    (List.length robots) r;
  match Rvu_sim.Multi.run ~horizon ~r robots with
  | Rvu_sim.Multi.Gathered t, stats ->
      Format.printf "gathered at t = %.6g (%d intervals scanned)@." t
        stats.Rvu_sim.Multi.intervals
  | Rvu_sim.Multi.Horizon h, stats ->
      Format.printf "not gathered by t = %g; smallest diameter seen %.6g@." h
        stats.Rvu_sim.Multi.min_diameter
  | Rvu_sim.Multi.Stream_end t, _ -> Format.printf "program ended at %g@." t

let gather_cmd =
  let robots =
    Arg.(
      value
      & opt_all robot_conv
          [
            { Rvu_sim.Multi.attributes = Attributes.make ~v:2.0 (); start = Vec2.make 1.5 0.5 };
            { Rvu_sim.Multi.attributes = Attributes.make ~v:3.0 (); start = Vec2.make (-1.0) 1.0 };
          ]
      & info [ "robot" ] ~docv:"V,X,Y"
          ~doc:"Add a robot with speed $(i,V) starting at ($(i,X), $(i,Y)). Repeatable.")
  in
  let horizon =
    Arg.(
      value & opt float 2e5
      & info [ "horizon" ] ~docv:"T" ~doc:"Give up after this much global time.")
  in
  Cmd.v
    (Cmd.info "gather"
       ~doc:"Simulate multi-robot gathering (the paper's open problem).")
    Term.(const gather $ robots $ r_arg $ horizon)

(* ------------------------------------------------------------------ *)
(* serve / loadgen *)

let service_jobs_arg =
  Arg.(
    value
    & opt positive_int (Rvu_exec.Pool.recommended_jobs ())
    & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains evaluating requests.")

let queue_depth_arg =
  Arg.(
    value & opt positive_int 64
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission bound: requests beyond this many in flight are shed \
           with an $(i,overloaded) error instead of queueing.")

let cache_entries_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"Result-cache capacity (LRU). 0 disables result caching.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:
          "Default per-request queue-wait budget in milliseconds; requests \
           still queued past it fail with a $(i,timeout) error. Values <= 0 \
           or absent mean no default timeout.")

let max_request_bytes_arg =
  Arg.(
    value
    & opt positive_int Rvu_service.Server.default_config.max_request_bytes
    & info
        [ "max-request-bytes" ]
        ~docv:"N"
        ~doc:
          "Reject request lines longer than this many bytes with a \
           structured $(i,invalid_request) error (they are never parsed).")

let service_config jobs queue_depth cache_entries timeout_ms max_request_bytes
    =
  {
    Rvu_service.Server.jobs;
    queue_depth;
    cache_entries = max 0 cache_entries;
    timeout_ms =
      (match timeout_ms with Some ms when ms > 0.0 -> Some ms | _ -> None);
    max_request_bytes;
  }

let config_term =
  Term.(
    const service_config $ service_jobs_arg $ queue_depth_arg
    $ cache_entries_arg $ timeout_arg $ max_request_bytes_arg)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
        Format.eprintf "rvu: cannot resolve host %S@." host;
        exit 1)

let inject_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i when i > 0 -> (
        let site = String.sub s 0 i in
        let prob = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt prob with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (site, p)
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "expected SITE=PROB with PROB in [0, 1], got %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "expected SITE=PROB, got %S" s))
  in
  Arg.conv ~docv:"SITE=PROB"
    (parse, fun ppf (s, p) -> Format.fprintf ppf "%s=%g" s p)

let inject_arg =
  Arg.(
    value & opt_all inject_conv []
    & info [ "inject" ] ~docv:"SITE=PROB"
        ~doc:
          "Arm the deterministic fault injector: fire the named injection \
           site (e.g. $(i,server.torn_frame), $(i,handler.crash)) with the \
           given probability. Repeatable. Off unless given.")

let inject_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "inject-seed" ] ~docv:"N"
        ~doc:"Seed for the fault injector's deterministic decisions.")

let serve config tcp_port host connections trace inject inject_seed =
  with_trace trace @@ fun () ->
  if inject <> [] then Rvu_obs.Fault.arm ~seed:inject_seed inject;
  let server = Rvu_service.Server.create ~config () in
  (match tcp_port with
  | Some port ->
      Rvu_service.Server.serve_tcp server ~host ~port ?connections ()
  | None -> Rvu_service.Server.serve_channels server stdin stdout);
  Rvu_service.Server.stop server

let serve_cmd =
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Listen on a TCP port instead of serving newline-delimited JSON \
             over stdin/stdout.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (with $(b,--tcp)).")
  in
  let connections =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Exit after serving this many TCP connections (default: serve \
             forever). Useful for smoke tests.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation server: one JSON request per line in, one JSON \
          response per line out (see DESIGN.md for the protocol).")
    Term.(
      const serve $ config_term $ tcp $ host $ connections $ trace_arg
      $ inject_arg $ inject_seed_arg)

let loadgen_tcp lg ~host ~port ~rate =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (resolve_host host, port))
   with Unix.Unix_error (e, _, _) ->
     Format.eprintf "rvu: cannot connect to %s:%d: %s@." host port
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  let reader =
    Domain.spawn (fun () ->
        try
          while true do
            Rvu_service.Loadgen.note_response lg (input_line ic)
          done
        with _ -> ())
  in
  Rvu_service.Loadgen.drive ~rate lg ~send:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc);
  let complete = Rvu_service.Loadgen.wait lg in
  (try Unix.shutdown sock Unix.SHUTDOWN_ALL with _ -> ());
  Domain.join reader;
  close_out_noerr oc;
  complete

let loadgen_local lg ~config ~rate =
  let server = Rvu_service.Server.create ~config () in
  Rvu_service.Loadgen.drive ~rate lg ~send:(fun line ->
      Rvu_service.Server.handle_line server line
        ~respond:(Rvu_service.Loadgen.note_response lg));
  let complete = Rvu_service.Loadgen.wait lg in
  Rvu_service.Server.stop server;
  complete

let loadgen connect requests rate seed config fail_on_error =
  let lg = Rvu_service.Loadgen.create ~seed ~requests () in
  let complete =
    match connect with
    | Some (host, port) -> loadgen_tcp lg ~host ~port ~rate
    | None -> loadgen_local lg ~config ~rate
  in
  let s = Rvu_service.Loadgen.summary lg in
  Rvu_service.Loadgen.print_summary s;
  if not complete then
    Format.eprintf "rvu: %d of %d responses never arrived@."
      (requests - s.Rvu_service.Loadgen.completed)
      requests;
  if fail_on_error && (not complete || s.Rvu_service.Loadgen.ok < requests)
  then exit 1

let loadgen_cmd =
  let connect =
    let parse s =
      match String.rindex_opt s ':' with
      | Some i -> begin
          let host = String.sub s 0 i in
          let port = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
          | _ -> Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s))
        end
      | None -> Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s))
    in
    let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
    Arg.(
      value
      & opt (some (conv ~docv:"HOST:PORT" (parse, print))) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Drive a running $(b,rvu serve --tcp) instance. Without this the \
             generator runs against an in-process server built from the \
             $(b,serve) flags below.")
  in
  let requests =
    Arg.(
      value & opt positive_int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to send.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Target request rate per second. 0 (default) sends flat out.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario-mix derivation seed.")
  in
  let fail_on_error =
    Arg.(
      value & flag
      & info [ "fail-on-error" ]
          ~doc:
            "Exit non-zero unless every request completed with an $(i,ok) \
             response.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a deterministic scenario mix against the evaluation server \
          and report throughput and latency percentiles.")
    Term.(
      const loadgen $ connect $ requests $ rate $ seed $ config_term
      $ fail_on_error)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify campaign seed cases report_path =
  match Rvu_verify.Campaign.of_name campaign with
  | None ->
      Format.eprintf "rvu verify: unknown campaign %S (known: %s)@." campaign
        (String.concat ", " Rvu_verify.Campaign.names);
      exit 2
  | Some run ->
      let report = run ~seed ~cases in
      print_string (Rvu_verify.Campaign.summary report);
      (match report_path with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Rvu_service.Wire.print_hum report.Rvu_verify.Campaign.json);
          close_out oc;
          Printf.printf "(report written to %s)\n" path);
      if report.Rvu_verify.Campaign.violations <> [] then exit 1

let verify_cmd =
  let campaign =
    Arg.(
      value & opt string "all"
      & info [ "campaign" ] ~docv:"NAME"
          ~doc:
            "Which campaign to run: $(i,symmetry) (metamorphic oracles \
             through engine, batch and server), $(i,faults) (deterministic \
             fault injection across the service stack), or $(i,all).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed. The case list and every injection decision are \
             a pure function of the seed and case count.")
  in
  let cases =
    Arg.(
      value & opt positive_int 100
      & info [ "cases" ] ~docv:"N" ~doc:"Cases per campaign.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the full JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run verification campaigns: metamorphic symmetry oracles and \
          deterministic fault injection. Exits non-zero on any invariant \
          violation.")
    Term.(const verify $ campaign $ seed $ cases $ report)

(* ------------------------------------------------------------------ *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "rvu" ~version:"1.0.0"
             ~doc:
               "Rendezvous by robots with unknown attributes (PODC 2019) - \
                simulator and analytic bounds.")
          [
            simulate_cmd; search_cmd; feasibility_cmd; schedule_cmd; bound_cmd;
            sweep_cmd; gather_cmd; serve_cmd; loadgen_cmd; verify_cmd;
          ]))
