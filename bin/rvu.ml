(* rvu — command-line front end for the rendezvous library.

   Subcommands:
     simulate     run a two-robot rendezvous instance
     search       run the single-robot search problem (Section 2)
     feasibility  classify an attribute vector (Theorem 4)
     schedule     print the Algorithm 7 phase schedule (Lemma 8)
     bound        print every applicable analytic bound for an instance
     sweep        run a distance sweep as a parallel batch (--jobs)
     gather       simulate multi-robot gathering
     serve        long-running evaluation server (NDJSON over stdio or TCP)
     loadgen      replay a scenario mix against the server; report latency *)

open Cmdliner
open Rvu_geom
open Rvu_core

(* ------------------------------------------------------------------ *)
(* Shared argument bundles *)

(* Count-like flags (--points, --jobs, --rounds, --requests, ...) share one
   validated converter so every subcommand rejects zero and negatives the
   same way, at parse time. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | None ->
        Error
          (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let v_arg =
  Arg.(value & opt float 1.0 & info [ "speed" ] ~docv:"V" ~doc:"Speed of robot R'.")

let tau_arg =
  Arg.(value & opt float 1.0 & info [ "tau"; "clock" ] ~docv:"TAU" ~doc:"Time unit of robot R'.")

let phi_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "phi"; "rotation" ] ~docv:"PHI"
        ~doc:"Compass rotation of R' in radians.")

let mirror_arg =
  Arg.(
    value & flag
    & info [ "mirror"; "opposite-chirality" ]
        ~doc:"R' disagrees with R on the +y direction (chi = -1).")

let d_arg =
  Arg.(value & opt float 2.0 & info [ "d"; "distance" ] ~docv:"D" ~doc:"Initial distance.")

let bearing_arg =
  Arg.(
    value & opt float 0.9
    & info [ "bearing" ] ~docv:"THETA" ~doc:"Direction of R' as seen from R (radians).")

let r_arg =
  Arg.(value & opt float 0.1 & info [ "r"; "visibility" ] ~docv:"R" ~doc:"Visibility radius.")

let horizon_arg =
  Arg.(
    value & opt float 1e8
    & info [ "horizon" ] ~docv:"T"
        ~doc:"Give up after this much global time (infeasible instances never meet).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-phase tracing spans into $(i,FILE) in Chrome \
           trace-event format (open it in chrome://tracing or \
           ui.perfetto.dev).")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      (try Rvu_obs.Trace.enable ~path () with
      | Sys_error msg ->
          Format.eprintf "rvu: cannot open trace file: %s@." msg;
          exit 1);
      Fun.protect ~finally:Rvu_obs.Trace.close f

(* Structured-logging flags, shared by the long-running subcommands
   (serve, loadgen, verify). Logging is off unless --log is given; an
   unwritable file is rejected up front, like an unwritable --trace. *)
let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Write NDJSON structured log records to $(docv) (one JSON object \
           per line; $(b,-) means stderr). Off unless given.")

let log_level_conv =
  let parse s =
    match Rvu_obs.Log.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "expected debug, info, warn or error, got %S" s))
  in
  Arg.conv ~docv:"LEVEL"
    ( parse,
      fun ppf l -> Format.pp_print_string ppf (Rvu_obs.Log.string_of_level l)
    )

let log_level_arg =
  Arg.(
    value
    & opt log_level_conv Rvu_obs.Log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Lowest record level written to the $(b,--log) sink: debug, info \
           (default), warn or error.")

let flight_recorder_arg =
  Arg.(
    value & opt int 0
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:
          "Keep the last $(docv) log records of every level (including \
           below $(b,--log-level)) in memory, and dump them to the log \
           sink when an error record is emitted or an armed fault fires. \
           0 (default) disables the recorder. Needs $(b,--log).")

let logging_term =
  Term.(
    const (fun log level flight -> (log, level, flight))
    $ log_arg $ log_level_arg $ flight_recorder_arg)

let with_logging (log, level, flight) f =
  match log with
  | None -> f ()
  | Some path ->
      let sink =
        if path = "-" then Rvu_obs.Log.Stderr else Rvu_obs.Log.File path
      in
      (try Rvu_obs.Log.configure ~level ~flight_recorder:(max 0 flight) sink
       with Sys_error msg ->
         Format.eprintf "rvu: cannot open log file: %s@." msg;
         exit 1);
      Fun.protect ~finally:Rvu_obs.Log.close f

let attributes v tau phi mirror =
  Attributes.make ~v ~tau ~phi
    ~chi:(if mirror then Attributes.Opposite else Attributes.Same)
    ()

let attrs_term = Term.(const attributes $ v_arg $ tau_arg $ phi_arg $ mirror_arg)

let describe_verdict = function
  | Feasibility.Feasible Feasibility.Different_clocks ->
      "feasible: the clocks differ (Theorem 3 applies)"
  | Feasibility.Feasible Feasibility.Different_speeds ->
      "feasible: the speeds differ (Theorem 2 applies)"
  | Feasibility.Feasible Feasibility.Rotated_same_chirality ->
      "feasible: equal chirality with rotated compasses (Theorem 2 applies)"
  | Feasibility.Infeasible ->
      "infeasible: no symmetric deterministic algorithm can guarantee rendezvous"

(* ------------------------------------------------------------------ *)
(* simulate *)

let draw_svg ~file ~program ~attrs ~displacement ~r ~t_end ~meeting =
  let until stream =
    List.of_seq
      (Seq.take_while
         (fun (seg : Rvu_trajectory.Timed.t) -> seg.Rvu_trajectory.Timed.t0 < t_end)
         stream)
  in
  let r_segs =
    until (Rvu_trajectory.Realize.realize Rvu_trajectory.Realize.identity program)
  in
  let r'_segs =
    until (Rvu_trajectory.Realize.realize (Frame.clocked attrs ~displacement) program)
  in
  let marker p color =
    Rvu_report.Svg.Disc
      { center = (p.Vec2.x, p.Vec2.y); radius = 0.04 *. Vec2.norm displacement; color }
  in
  let shapes =
    [
      Rvu_report.Svg.of_timed ~color:"#1f77b4" r_segs;
      Rvu_report.Svg.of_timed ~color:"#d62728" r'_segs;
      marker Vec2.zero "#1f77b4";
      marker displacement "#d62728";
    ]
    @
    match meeting with
    | None -> []
    | Some p ->
        [
          marker p "#2ca02c";
          Rvu_report.Svg.Ring { center = (p.Vec2.x, p.Vec2.y); radius = r; color = "#2ca02c" };
        ]
  in
  Rvu_report.Svg.write ~path:file shapes;
  Format.printf "trajectories written to %s@." file

(* --set FIELD=VALUE carries untyped strings; each value takes the most
   specific JSON form it parses as, and the model's own [of_wire] does
   the real validation with the protocol's error messages. *)
let set_value s =
  match s with
  | "true" -> Rvu_obs.Wire.Bool true
  | "false" -> Rvu_obs.Wire.Bool false
  | _ -> (
      match int_of_string_opt s with
      | Some i -> Rvu_obs.Wire.Int i
      | None -> (
          match float_of_string_opt s with
          | Some f when Float.is_finite f -> Rvu_obs.Wire.Float f
          | _ -> Rvu_obs.Wire.String s))

let registry_entry name =
  match Rvu_model.Registry.find name with
  | Some e -> e
  | None ->
      Format.eprintf "rvu: unknown model %S (known: %s)@." name
        (String.concat ", " Rvu_model.Registry.names);
      exit 1

let simulate_model name sets =
  let e = registry_entry name in
  let fields = List.map (fun (k, v) -> (k, set_value v)) sets in
  match e.Rvu_model.Registry.of_wire (Rvu_obs.Wire.Obj fields) with
  | Error msg ->
      Format.eprintf "rvu: %s@." msg;
      exit 1
  | Ok inst ->
      print_string (Rvu_obs.Wire.print_hum (inst.Rvu_model.Model.payload ()))

let simulate attrs d bearing r horizon use_alg4 svg_file model sets =
  match model with
  | Some name -> simulate_model name sets
  | None ->
  if sets <> [] then begin
    Format.eprintf "rvu: --set needs --model@.";
    exit 1
  end;
  let displacement = Vec2.of_polar ~radius:d ~angle:bearing in
  let inst = Rvu_sim.Engine.instance ~attributes:attrs ~displacement ~r in
  let program =
    if use_alg4 then Rvu_search.Algorithm4.program () else Universal.program ()
  in
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "%s@." (describe_verdict (Feasibility.classify attrs));
  let res = Rvu_sim.Engine.run ~horizon ~program inst in
  (match res.Rvu_sim.Engine.outcome with
  | Rvu_sim.Detector.Hit t ->
      Format.printf "rendezvous at t = %.6g@." t;
      (match Phases.phase_at t with
      | Some (n, p) when not use_alg4 ->
          Format.printf "  (during schedule round %d, %s phase)@." n
            (match p with Phases.Active -> "active" | Phases.Inactive -> "inactive")
      | _ -> ())
  | Rvu_sim.Detector.Horizon h -> Format.printf "no rendezvous by t = %g@." h
  | Rvu_sim.Detector.Stream_end t -> Format.printf "program ended at t = %g@." t);
  (match (res.Rvu_sim.Engine.bound.Universal.round, res.Rvu_sim.Engine.bound.Universal.time) with
  | Some k, Some b ->
      Format.printf "analytic guarantee: round %d, time %.6g@." k b
  | _ -> ());
  Format.printf "segment-pair intervals scanned: %d; closest sampled approach: %.6g@."
    res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals
    res.Rvu_sim.Engine.stats.Rvu_sim.Detector.min_distance;
  match svg_file with
  | None -> ()
  | Some file ->
      let t_end, meeting =
        match res.Rvu_sim.Engine.outcome with
        | Rvu_sim.Detector.Hit t ->
            (t, Some (Rvu_trajectory.Realize.position Rvu_trajectory.Realize.identity program t))
        | Rvu_sim.Detector.Horizon h -> (Float.min h 5000.0, None)
        | Rvu_sim.Detector.Stream_end t -> (t, None)
      in
      draw_svg ~file ~program ~attrs ~displacement ~r ~t_end ~meeting

let simulate_cmd =
  let alg4 =
    Arg.(
      value & flag
      & info [ "algorithm4" ]
          ~doc:"Run Algorithm 4 (no waiting phases) instead of the universal Algorithm 7.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Write both robots' trajectories (up to the meeting) as an SVG figure.")
  in
  let model =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"NAME"
          ~doc:
            "Simulate a registered rendezvous model instead of the paper's \
             (one of: unknown_attributes, cycle_speed, visible_bits). The \
             run prints the model's response document; parameters come \
             from $(b,--set).")
  in
  let sets =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "set" ] ~docv:"FIELD=VALUE"
          ~doc:
            "Set a model parameter field (repeatable), e.g. \
             $(b,--set c=1.5 --set gap=3). Needs $(b,--model).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a two-robot rendezvous instance.")
    Term.(
      const simulate $ attrs_term $ d_arg $ bearing_arg $ r_arg $ horizon_arg
      $ alg4 $ svg $ model $ sets)

(* ------------------------------------------------------------------ *)
(* search *)

let search d bearing r horizon =
  let target = Vec2.of_polar ~radius:d ~angle:bearing in
  Format.printf "searching for a target at distance %g, visibility %g@." d r;
  match
    Rvu_sim.Search_engine.run ~horizon
      ~program:(Rvu_search.Algorithm4.program ())
      ~target ~r ()
  with
  | Rvu_sim.Search_engine.Found t, stats ->
      Format.printf "found at t = %.6g (%d segments walked)@." t
        stats.Rvu_sim.Search_engine.segments;
      let round = Rvu_search.Predict.discovery_round ~d ~r in
      Format.printf "predicted discovery round: %d (completion time %.6g)@."
        round
        (Rvu_search.Bounds.time_through_round round);
      Format.printf "Theorem 1 bound (as printed): %.6g; repaired: %.6g@."
        (Rvu_search.Bounds.search_time ~d ~r)
        (Rvu_search.Bounds.search_time_safe ~d ~r)
  | Rvu_sim.Search_engine.Horizon h, _ ->
      Format.printf "not found by t = %g@." h
  | Rvu_sim.Search_engine.Program_end t, _ ->
      Format.printf "program ended at t = %g@." t

let search_cmd =
  Cmd.v
    (Cmd.info "search" ~doc:"Run the Section 2 search problem (Algorithm 4).")
    Term.(const search $ d_arg $ bearing_arg $ r_arg $ horizon_arg)

(* ------------------------------------------------------------------ *)
(* feasibility *)

let feasibility attrs =
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "%s@." (describe_verdict (Feasibility.classify attrs));
  match Feasibility.adversarial_direction attrs with
  | Some dir ->
      Format.printf
        "adversarial displacement direction (never approached): %a@." Vec2.pp
        dir
  | None -> ()

let feasibility_cmd =
  Cmd.v
    (Cmd.info "feasibility" ~doc:"Classify an attribute vector per Theorem 4.")
    Term.(const feasibility $ attrs_term)

(* ------------------------------------------------------------------ *)
(* schedule *)

let schedule rounds =
  let t = Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ "round n"; "S(n)"; "I(n)"; "A(n)"; "round end"; "segments" ])
  in
  for n = 1 to rounds do
    Rvu_report.Table.add_row t
      [
        Rvu_report.Table.istr n;
        Rvu_report.Table.fstr (Phases.s n);
        Rvu_report.Table.fstr (Phases.inactive_start n);
        Rvu_report.Table.fstr (Phases.active_start n);
        Rvu_report.Table.fstr (Phases.round_end n);
        Rvu_report.Table.istr (2 * Rvu_search.Timing.search_all_segments n + 1);
      ]
  done;
  Rvu_report.Table.print t

let schedule_cmd =
  let rounds =
    Arg.(
      value & opt positive_int 8
      & info [ "rounds" ] ~docv:"N" ~doc:"Rounds to list.")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Print the Algorithm 7 phase schedule closed forms (Lemma 8).")
    Term.(const schedule $ rounds)

(* ------------------------------------------------------------------ *)
(* bound *)

let bound attrs d r =
  Format.printf "R' attributes: %a; d = %g, r = %g@." Attributes.pp attrs d r;
  let g = Universal.guarantee attrs ~d ~r in
  Format.printf "%s@." (describe_verdict g.Universal.verdict);
  (match (g.Universal.round, g.Universal.time) with
  | Some k, Some t ->
      Format.printf "universal (Algorithm 7) guarantee: round %d, time %.6g@." k t
  | _ -> ());
  (match Bounds.symmetric_clock_time attrs ~d ~r with
  | Some t ->
      Format.printf
        "Theorem 2 bound for Algorithm 4 (as printed): %.6g; repaired: %.6g@."
        t
        (Option.get (Bounds.symmetric_clock_time_safe attrs ~d ~r))
  | None -> ());
  if not (Rvu_numerics.Floats.equal attrs.Attributes.tau 1.0) then begin
    let k = Bounds.asymmetric_round attrs ~d ~r in
    Format.printf "Theorem 3 / Lemma 13 bound: round k* = %d, time %.6g@." k
      (Bounds.asymmetric_time attrs ~d ~r)
  end

let bound_cmd =
  Cmd.v
    (Cmd.info "bound" ~doc:"Print every applicable analytic bound.")
    Term.(const bound $ attrs_term $ d_arg $ r_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_model name ~lo ~hi ~points ~out ~shards ~resume =
  (* The checkpointed-atlas flags all belong to the paper model's d-sweep;
     each is rejected by name so the message says which flag to drop. *)
  List.iter
    (fun (given, flag) ->
      if given then begin
        Format.eprintf "rvu: --model sweeps do not support %s@." flag;
        exit 1
      end)
    [
      (out <> None, "--out");
      (shards <> None, "--shards");
      (resume, "--resume");
    ];
  let e = registry_entry name in
  let axis = e.Rvu_model.Registry.sweep_axis in
  let xs = Rvu_workload.Sweep.linspace ~lo ~hi ~n:points in
  Format.printf "sweeping %s's %s over %d point(s) in [%g, %g]@." name axis
    (List.length xs) lo hi;
  let t =
    Rvu_report.Table.create
      ~columns:
        (List.map Rvu_report.Table.column
           [ axis; "outcome"; "t"; "steps"; "min_distance" ])
  in
  List.iter
    (fun x ->
      let inst = e.Rvu_model.Registry.sweep x in
      let res = inst.Rvu_model.Model.run () in
      let outcome, time =
        match res.Rvu_model.Model.outcome with
        | Rvu_model.Model.Hit t -> ("hit", Rvu_report.Table.fstr t)
        | Rvu_model.Model.Horizon h -> ("horizon", Rvu_report.Table.fstr h)
      in
      Rvu_report.Table.add_row t
        [
          Rvu_report.Table.fstr x; outcome; time;
          Rvu_report.Table.istr res.Rvu_model.Model.steps;
          Rvu_report.Table.fstr res.Rvu_model.Model.min_distance;
        ])
    xs;
  Rvu_report.Table.print t

let sweep attrs d_lo d_hi points bearing r horizon jobs out shards resume
    trace model =
  with_trace trace @@ fun () ->
  match model with
  | Some name -> sweep_model name ~lo:d_lo ~hi:d_hi ~points ~out ~shards ~resume
  | None ->
  let shards = Option.value shards ~default:8 in
  if resume && out = None then begin
    Format.eprintf "rvu: --resume requires --out DIR@.";
    exit 1
  end;
  let ds = Rvu_workload.Sweep.linspace ~lo:d_lo ~hi:d_hi ~n:points in
  let darr = Array.of_list ds in
  let instance_of d =
    Rvu_sim.Engine.instance ~attributes:attrs
      ~displacement:(Vec2.of_polar ~radius:d ~angle:bearing)
      ~r
  in
  Format.printf "R' attributes: %a@." Attributes.pp attrs;
  Format.printf "sweeping d over %d point(s) in [%g, %g], r = %g@."
    (List.length ds) d_lo d_hi r;
  match out with
  | None ->
      let instances = Array.map instance_of darr in
      let results = Rvu_exec.Batch.run ~horizon ~jobs instances in
      let t =
        Rvu_report.Table.create
          ~columns:
            (List.map Rvu_report.Table.column
               [ "d"; "outcome"; "t"; "bound"; "intervals" ])
      in
      Array.iteri
        (fun i res ->
          let d = darr.(i) in
          let outcome, time =
            match res.Rvu_sim.Engine.outcome with
            | Rvu_sim.Detector.Hit t -> ("hit", Rvu_report.Table.fstr t)
            | Rvu_sim.Detector.Horizon h ->
                ("horizon", Rvu_report.Table.fstr h)
            | Rvu_sim.Detector.Stream_end t ->
                ("stream end", Rvu_report.Table.fstr t)
          in
          let bound =
            match res.Rvu_sim.Engine.bound.Universal.time with
            | Some b -> Rvu_report.Table.fstr b
            | None -> "-"
          in
          Rvu_report.Table.add_row t
            [
              Rvu_report.Table.fstr d; outcome; time; bound;
              Rvu_report.Table.istr
                res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals;
            ])
        results;
      Rvu_report.Table.print t
  | Some dir ->
      (* Checkpointed atlas mode: every row is a deterministic function of
         its cell (no timestamps, no machine state), so a resumed run's
         atlas is byte-identical to an uninterrupted one. *)
      let eval start stop =
        let insts =
          Array.init (stop - start) (fun k -> instance_of darr.(start + k))
        in
        let results = Rvu_exec.Batch.run ~horizon ~jobs insts in
        Array.mapi
          (fun k (res : Rvu_sim.Engine.result) ->
            let i = start + k in
            let kind, time =
              match res.Rvu_sim.Engine.outcome with
              | Rvu_sim.Detector.Hit t -> ("hit", t)
              | Rvu_sim.Detector.Horizon h -> ("horizon", h)
              | Rvu_sim.Detector.Stream_end t -> ("stream_end", t)
            in
            Rvu_obs.Wire.Obj
              [
                ("cell", Rvu_obs.Wire.Int i);
                ("d", Rvu_obs.Wire.Float darr.(i));
                ("outcome", Rvu_obs.Wire.String kind);
                ("t", Rvu_obs.Wire.Float time);
                ( "bound",
                  match res.Rvu_sim.Engine.bound.Universal.time with
                  | Some b -> Rvu_obs.Wire.Float b
                  | None -> Rvu_obs.Wire.Null );
                ( "intervals",
                  Rvu_obs.Wire.Int
                    res.Rvu_sim.Engine.stats.Rvu_sim.Detector.intervals );
              ])
          results
      in
      let on_shard (p : Rvu_workload.Checkpoint.progress) =
        Format.printf "shard %d: %d cell(s)%s@." p.Rvu_workload.Checkpoint.shard
          p.Rvu_workload.Checkpoint.cells
          (if p.Rvu_workload.Checkpoint.skipped then " (checkpoint reused)"
           else "")
      in
      let atlas =
        Rvu_workload.Checkpoint.run ~dir ~shards ~resume ~on_shard
          ~cells:(Array.length darr) ~eval ()
      in
      Format.printf "atlas written to %s@." atlas

let sweep_cmd =
  let d_lo =
    Arg.(value & opt float 1.0 & info [ "d-lo" ] ~docv:"D" ~doc:"Smallest initial distance.")
  in
  let d_hi =
    Arg.(value & opt float 4.0 & info [ "d-hi" ] ~docv:"D" ~doc:"Largest initial distance.")
  in
  let points =
    Arg.(
      value & opt positive_int 8
      & info [ "points" ] ~docv:"N" ~doc:"Number of sweep points.")
  in
  let jobs =
    Arg.(
      value
      & opt positive_int (Rvu_exec.Pool.recommended_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Domains to run the batch on (default: all cores). Results are \
             bit-identical for every job count.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write the sweep as a checkpointed NDJSON atlas under $(docv) \
             (one shard file per cell block, then an assembled \
             atlas.ndjson) instead of printing a table.")
  in
  let shards =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Checkpoint granularity for --out (default 8).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reuse existing shard checkpoints under --out instead of \
             recomputing them; the assembled atlas is byte-identical to an \
             uninterrupted run's.")
  in
  let model =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"NAME"
          ~doc:
            "Sweep a registered rendezvous model's own axis (gap for \
             cycle_speed, d for visible_bits and unknown_attributes) over \
             [$(b,--d-lo), $(b,--d-hi)] with $(b,--points) points; other \
             parameters stay at the model's defaults. Not combinable with \
             the atlas flags ($(b,--out), $(b,--shards), $(b,--resume)).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a batch of rendezvous instances over a distance sweep, in \
          parallel — optionally as a checkpointed, resumable NDJSON atlas \
          (--out, --resume) — or a registered model's one-axis sweep \
          (--model).")
    Term.(
      const sweep $ attrs_term $ d_lo $ d_hi $ points $ bearing_arg $ r_arg
      $ horizon_arg $ jobs $ out $ shards $ resume $ trace_arg $ model)

(* ------------------------------------------------------------------ *)
(* gather *)

let parse_robot spec =
  (* v,x,y — a robot with speed v starting at (x, y). *)
  match String.split_on_char ',' spec with
  | [ v; x; y ] -> begin
      match (float_of_string_opt v, float_of_string_opt x, float_of_string_opt y) with
      | Some v, Some x, Some y ->
          Ok { Rvu_sim.Multi.attributes = Attributes.make ~v (); start = Vec2.make x y }
      | _ -> Error (`Msg (Printf.sprintf "bad robot %S (want v,x,y)" spec))
    end
  | _ -> Error (`Msg (Printf.sprintf "bad robot %S (want v,x,y)" spec))

let robot_conv =
  Arg.conv
    ( parse_robot,
      fun ppf robot ->
        Format.fprintf ppf "%g,%a"
          robot.Rvu_sim.Multi.attributes.Attributes.v Vec2.pp
          robot.Rvu_sim.Multi.start )

let gather robots r horizon =
  let robots =
    { Rvu_sim.Multi.attributes = Attributes.reference; start = Vec2.zero }
    :: robots
  in
  Format.printf "swarm of %d robots (reference at the origin), r = %g@."
    (List.length robots) r;
  match Rvu_sim.Multi.run ~horizon ~r robots with
  | Rvu_sim.Multi.Gathered t, stats ->
      Format.printf "gathered at t = %.6g (%d intervals scanned)@." t
        stats.Rvu_sim.Multi.intervals
  | Rvu_sim.Multi.Horizon h, stats ->
      Format.printf "not gathered by t = %g; smallest diameter seen %.6g@." h
        stats.Rvu_sim.Multi.min_diameter
  | Rvu_sim.Multi.Stream_end t, _ -> Format.printf "program ended at %g@." t

let gather_cmd =
  let robots =
    Arg.(
      value
      & opt_all robot_conv
          [
            { Rvu_sim.Multi.attributes = Attributes.make ~v:2.0 (); start = Vec2.make 1.5 0.5 };
            { Rvu_sim.Multi.attributes = Attributes.make ~v:3.0 (); start = Vec2.make (-1.0) 1.0 };
          ]
      & info [ "robot" ] ~docv:"V,X,Y"
          ~doc:"Add a robot with speed $(i,V) starting at ($(i,X), $(i,Y)). Repeatable.")
  in
  let horizon =
    Arg.(
      value & opt float 2e5
      & info [ "horizon" ] ~docv:"T" ~doc:"Give up after this much global time.")
  in
  Cmd.v
    (Cmd.info "gather"
       ~doc:"Simulate multi-robot gathering (the paper's open problem).")
    Term.(const gather $ robots $ r_arg $ horizon)

(* ------------------------------------------------------------------ *)
(* serve / loadgen *)

let service_jobs_arg =
  Arg.(
    value
    & opt positive_int (Rvu_exec.Pool.recommended_jobs ())
    & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains evaluating requests.")

let queue_depth_arg =
  Arg.(
    value & opt positive_int 64
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission bound: requests beyond this many in flight are shed \
           with an $(i,overloaded) error instead of queueing.")

let cache_entries_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-entries" ] ~docv:"N"
        ~doc:"Result-cache capacity (LRU). 0 disables result caching.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:
          "Default per-request queue-wait budget in milliseconds; requests \
           still queued past it fail with a $(i,timeout) error. Values <= 0 \
           or absent mean no default timeout.")

let max_request_bytes_arg =
  Arg.(
    value
    & opt positive_int Rvu_service.Server.default_config.max_request_bytes
    & info
        [ "max-request-bytes" ]
        ~docv:"N"
        ~doc:
          "Reject request lines longer than this many bytes with a \
           structured $(i,invalid_request) error (they are never parsed).")

let service_config jobs queue_depth cache_entries timeout_ms max_request_bytes
    =
  {
    Rvu_service.Server.jobs;
    queue_depth;
    cache_entries = max 0 cache_entries;
    timeout_ms =
      (match timeout_ms with Some ms when ms > 0.0 -> Some ms | _ -> None);
    max_request_bytes;
    slow_ms = None;
  }

let config_term =
  Term.(
    const service_config $ service_jobs_arg $ queue_depth_arg
    $ cache_entries_arg $ timeout_arg $ max_request_bytes_arg)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
        Format.eprintf "rvu: cannot resolve host %S@." host;
        exit 1)

let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> begin
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ ->
            Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s))
      end
    | None -> Error (`Msg (Printf.sprintf "bad address %S (want HOST:PORT)" s))
  in
  Arg.conv ~docv:"HOST:PORT"
    (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let inject_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i when i > 0 -> (
        let site = String.sub s 0 i in
        let prob = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt prob with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (site, p)
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "expected SITE=PROB with PROB in [0, 1], got %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "expected SITE=PROB, got %S" s))
  in
  Arg.conv ~docv:"SITE=PROB"
    (parse, fun ppf (s, p) -> Format.fprintf ppf "%s=%g" s p)

let inject_arg =
  Arg.(
    value & opt_all inject_conv []
    & info [ "inject" ] ~docv:"SITE=PROB"
        ~doc:
          "Arm the deterministic fault injector: fire the named injection \
           site (e.g. $(i,server.torn_frame), $(i,handler.crash)) with the \
           given probability. Repeatable. Off unless given.")

let inject_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "inject-seed" ] ~docv:"N"
        ~doc:"Seed for the fault injector's deterministic decisions.")

(* The wire-codec enum (--wire json|binary), shared by serve, loadgen,
   router and verify — one converter so every subcommand rejects a bad
   codec name the same way, at parse time. *)
let wire_conv =
  let parse s =
    match Rvu_service.Wire_bin.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg (Printf.sprintf "expected \"json\" or \"binary\", got %S" s))
  in
  Arg.conv ~docv:"WIRE"
    ( parse,
      fun ppf m ->
        Format.pp_print_string ppf (Rvu_service.Wire_bin.mode_string m) )

let wire_arg ~doc =
  Arg.(
    value
    & opt wire_conv Rvu_service.Wire_bin.Json
    & info [ "wire" ] ~docv:"WIRE" ~doc)

let serve config tcp_port host connections wire trace logging inject inject_seed
    slow_ms ctx_seed =
  (* A router-owned worker is stopped with SIGTERM, which would skip
     [at_exit] and lose the trace file's final flush — convert it to a
     clean exit while tracing so {!Rvu_obs.Trace.close} runs. Without
     --trace the default termination semantics are kept. *)
  (if trace <> None && Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 0))
     with _ -> ());
  Option.iter Rvu_obs.Ctx.set_seed ctx_seed;
  let config =
    {
      config with
      Rvu_service.Server.slow_ms =
        (match slow_ms with Some ms when ms > 0.0 -> Some ms | _ -> None);
    }
  in
  with_trace trace @@ fun () ->
  with_logging logging @@ fun () ->
  if inject <> [] then Rvu_obs.Fault.arm ~seed:inject_seed inject;
  Rvu_obs.Runtime.start ();
  let server = Rvu_service.Server.create ~config () in
  Fun.protect ~finally:Rvu_obs.Runtime.stop @@ fun () ->
  (match tcp_port with
  | Some port ->
      Rvu_service.Server.serve_tcp ~wire server ~host ~port ?connections ()
  | None -> Rvu_service.Server.serve_channels ~wire server stdin stdout);
  Rvu_service.Server.stop server

let serve_cmd =
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Listen on a TCP port instead of serving newline-delimited JSON \
             over stdin/stdout.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (with $(b,--tcp)).")
  in
  let connections =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Exit after serving this many TCP connections (default: serve \
             forever). Useful for smoke tests.")
  in
  let wire =
    wire_arg
      ~doc:
        "Starting wire codec for every connection: $(i,json) (default, \
         NDJSON; a $(i,hello) record can still upgrade a connection to \
         binary) or $(i,binary) (length-prefixed frames from byte zero, \
         for peers pinned with the same flag)."
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-request trigger (with $(b,--trace)): a request slower \
             than $(docv) milliseconds gets its trace spans force-retained \
             past ring wrap-around, and a $(i,warn) log record with its \
             trace id.")
  in
  let ctx_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "ctx-seed" ] ~docv:"N"
          ~doc:
            "Reseed the correlation-id generator. The router passes each \
             spawned worker a distinct seed so generated ids never collide \
             across shards; the default seed keeps ids pinnable in tests.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation server: one JSON request per line in, one JSON \
          response per line out (see DESIGN.md for the protocol).")
    Term.(
      const serve $ config_term $ tcp $ host $ connections $ wire $ trace_arg
      $ logging_term $ inject_arg $ inject_seed_arg $ slow_ms $ ctx_seed)

(* Client-side binary shims: [Loadgen] itself is transport-agnostic and
   speaks JSON lines, so driving a binary connection means transcoding at
   the edges — encode each generated line into a frame on the way out,
   print each decoded response back to its canonical JSON line for
   [note_response] on the way in. Both codecs are canonical over the same
   value domain, so the latency/ok accounting sees exactly the lines a
   JSON connection would. *)
let frame_of_line line =
  match Rvu_service.Wire.parse line with
  | Ok w -> Rvu_service.Wire_bin.encode w
  | Error _ ->
      (* Loadgen only emits well-formed scenario lines. *)
      invalid_arg "loadgen: cannot encode scenario line"

let line_of_frame payload =
  match Rvu_service.Wire_bin.decode payload with
  | Ok w -> Rvu_service.Wire.print w
  | Error _ -> "{\"error\":{\"code\":\"internal\"}}"

(* Upgrade one fresh connection to binary frames: hello (with the
   reserved id 0 — Loadgen's own ids start at 1) must be the first
   record, and its response is still a JSON line. *)
let client_hello ic oc =
  output_string oc "{\"id\":0,\"kind\":\"hello\",\"wire\":\"binary\"}\n";
  flush oc;
  let ok =
    match Rvu_service.Wire.parse (input_line ic) with
    | Error _ -> false
    | Ok w -> (
        match
          Option.bind (Rvu_service.Wire.member "ok" w)
            (Rvu_service.Wire.member "wire")
        with
        | Some (Rvu_service.Wire.String "binary") -> true
        | _ -> false)
  in
  if not ok then begin
    Format.eprintf "rvu: server rejected the binary wire upgrade@.";
    exit 1
  end

let loadgen_tcp lg ~host ~port ~rate ~connections ~wire =
  (* [Loadgen.drive] sends from one thread, so round-robin over the
     connection pool is a bare counter — no lock. [note_response] is
     domain-safe, so each connection gets its own reader domain and
     responses interleave freely; percentile reporting stays exact
     because every sample still lands in the one retained-samples
     histogram. *)
  let socks =
    Array.init connections (fun _ ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect sock (Unix.ADDR_INET (resolve_host host, port))
         with Unix.Unix_error (e, _, _) ->
           Format.eprintf "rvu: cannot connect to %s:%d: %s@." host port
             (Unix.error_message e);
           exit 1);
        sock)
  in
  let chans =
    Array.map
      (fun sock ->
        (Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock))
      socks
  in
  (match wire with
  | Rvu_service.Wire_bin.Json -> ()
  | Rvu_service.Wire_bin.Binary ->
      Array.iter (fun (ic, oc) -> client_hello ic oc) chans);
  let readers =
    Array.map
      (fun (ic, _) ->
        Domain.spawn (fun () ->
            try
              match wire with
              | Rvu_service.Wire_bin.Json ->
                  while true do
                    Rvu_service.Loadgen.note_response lg (input_line ic)
                  done
              | Rvu_service.Wire_bin.Binary ->
                  let live = ref true in
                  while !live do
                    match Rvu_service.Wire_bin.input_frame ic with
                    | Rvu_service.Wire_bin.Frame payload ->
                        Rvu_service.Loadgen.note_response lg
                          (line_of_frame payload)
                    | Rvu_service.Wire_bin.Eof
                    | Rvu_service.Wire_bin.Truncated
                    | Rvu_service.Wire_bin.Oversized _ ->
                        live := false
                  done
            with _ -> ()))
      chans
  in
  let next = ref 0 in
  Rvu_service.Loadgen.drive ~rate lg ~send:(fun line ->
      let _, oc = chans.(!next) in
      next := (!next + 1) mod connections;
      (match wire with
      | Rvu_service.Wire_bin.Json ->
          output_string oc line;
          output_char oc '\n'
      | Rvu_service.Wire_bin.Binary ->
          Rvu_service.Wire_bin.output_frame oc (frame_of_line line));
      flush oc);
  let complete = Rvu_service.Loadgen.wait lg in
  Array.iter
    (fun sock -> try Unix.shutdown sock Unix.SHUTDOWN_ALL with _ -> ())
    socks;
  Array.iter Domain.join readers;
  Array.iter (fun (_, oc) -> close_out_noerr oc) chans;
  complete

let loadgen_local lg ~config ~rate ~wire =
  let server = Rvu_service.Server.create ~config () in
  Rvu_service.Loadgen.drive ~rate lg ~send:(fun line ->
      match wire with
      | Rvu_service.Wire_bin.Json ->
          Rvu_service.Server.handle_line server line
            ~respond:(Rvu_service.Loadgen.note_response lg)
      | Rvu_service.Wire_bin.Binary ->
          (* Same transcode shim as the TCP path, so the local mode still
             exercises the server's binary decode/encode/frame-cache
             path end to end. *)
          Rvu_service.Server.handle_payload server (frame_of_line line)
            ~respond:(fun payload ->
              Rvu_service.Loadgen.note_response lg (line_of_frame payload)));
  let complete = Rvu_service.Loadgen.wait lg in
  Rvu_service.Server.stop server;
  complete

let loadgen connect connections requests rate seed slow_ms zipf wire config
    logging fail_on_error =
  with_logging logging @@ fun () ->
  let lg = Rvu_service.Loadgen.create ~seed ?slow_ms ?zipf ~requests () in
  let complete =
    match connect with
    | Some (host, port) -> loadgen_tcp lg ~host ~port ~rate ~connections ~wire
    | None ->
        if connections > 1 then begin
          Format.eprintf "rvu: --connections needs --connect@.";
          exit 1
        end;
        loadgen_local lg ~config ~rate ~wire
  in
  let s = Rvu_service.Loadgen.summary lg in
  Rvu_service.Loadgen.print_summary s;
  if not complete then
    Format.eprintf "rvu: %d of %d responses never arrived@."
      (requests - s.Rvu_service.Loadgen.completed)
      requests;
  if fail_on_error && (not complete || s.Rvu_service.Loadgen.ok < requests)
  then exit 1

let loadgen_cmd =
  let connect =
    Arg.(
      value
      & opt (some hostport_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Drive a running $(b,rvu serve --tcp) instance. Without this the \
             generator runs against an in-process server built from the \
             $(b,serve) flags below.")
  in
  let requests =
    Arg.(
      value & opt positive_int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to send.")
  in
  let connections =
    Arg.(
      value & opt positive_int 1
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Drive the target over this many concurrent TCP connections, \
             round-robining the scenario mix across them — a single \
             closed-loop connection under-drives a multi-shard router. \
             Needs $(b,--connect).")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Target request rate per second. 0 (default) sends flat out.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario-mix derivation seed.")
  in
  let slow_ms =
    let positive_float =
      let parse s =
        match float_of_string_opt s with
        | Some x when Float.is_finite x && x > 0.0 -> Ok x
        | _ ->
            Error
              (`Msg
                (Printf.sprintf "expected a positive number of ms, got %S" s))
      in
      Arg.conv ~docv:"MS" (parse, fun ppf x -> Format.fprintf ppf "%g" x)
    in
    Arg.(
      value
      & opt (some positive_float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log a $(i,warn) record — under the request's correlation id, \
             so it joins the server's own log — for every response slower \
             than $(docv) milliseconds (e.g. a p99 objective). Needs \
             $(b,--log).")
  in
  let zipf =
    let positive_float =
      let parse s =
        match float_of_string_opt s with
        | Some x when Float.is_finite x && x > 0.0 -> Ok x
        | _ ->
            Error
              (`Msg (Printf.sprintf "expected a positive exponent, got %S" s))
      in
      Arg.conv ~docv:"S" (parse, fun ppf x -> Format.fprintf ppf "%g" x)
    in
    Arg.(
      value
      & opt (some positive_float) None
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Draw requests from a Zipf-skewed popularity distribution with \
             exponent $(docv) over a fixed scenario population (instead of \
             cycling the uniform mix): rank k is sent with probability \
             proportional to 1/k^$(docv). Higher exponents concentrate \
             traffic on fewer distinct requests — a cache-friendliness \
             dial. Pacing ($(b,--rate)) is unchanged.")
  in
  let fail_on_error =
    Arg.(
      value & flag
      & info [ "fail-on-error" ]
          ~doc:
            "Exit non-zero unless every request completed with an $(i,ok) \
             response.")
  in
  let wire =
    wire_arg
      ~doc:
        "Wire codec to drive the target with: $(i,json) (default, NDJSON) \
         or $(i,binary) (upgrade each connection with a $(i,hello) \
         handshake, then length-prefixed frames both ways). Latency and \
         ok/error accounting are codec-independent."
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a deterministic scenario mix against the evaluation server \
          and report throughput and latency percentiles.")
    Term.(
      const loadgen $ connect $ connections $ requests $ rate $ seed $ slow_ms
      $ zipf $ wire $ config_term $ logging_term $ fail_on_error)

(* ------------------------------------------------------------------ *)
(* router *)

let worker_argv ?worker_trace ~index config port inject inject_seed =
  let open Rvu_service.Server in
  Array.of_list
    ([
       Sys.executable_name;
       "serve";
       "--tcp";
       string_of_int port;
       "--jobs";
       string_of_int config.jobs;
       "--queue-depth";
       string_of_int config.queue_depth;
       "--cache-entries";
       string_of_int config.cache_entries;
       "--max-request-bytes";
       string_of_int config.max_request_bytes;
       (* A distinct per-worker seed: default-seed workers would generate
          the same correlation-id sequence on every shard, so a merged
          trace or log aggregate would join unrelated requests. +1 keeps
          shard 0 off the default sequence too. *)
       "--ctx-seed";
       string_of_int (index + 1);
     ]
    @ (match worker_trace with
      | Some prefix ->
          [ "--trace"; Printf.sprintf "%s%d.trace" prefix index ]
      | None -> [])
    @ (match config.timeout_ms with
      | Some ms -> [ "--timeout"; Printf.sprintf "%g" ms ]
      | None -> [])
    @ List.concat_map
        (fun (site, prob) ->
          [ "--inject"; Printf.sprintf "%s=%g" site prob ])
        inject
    @
    if inject = [] then [] else [ "--inject-seed"; string_of_int inject_seed ])

let router config workers connect worker_base_port tcp_port host connections
    probe_interval_ms restart_backoff_ms route_timeout_ms wire trace logging
    inject inject_seed worker_trace =
  with_trace trace @@ fun () ->
  with_logging logging @@ fun () ->
  let endpoints =
    match (workers, connect) with
    | Some _, _ :: _ ->
        Format.eprintf "rvu: --workers and --connect are mutually exclusive@.";
        exit 1
    | None, [] ->
        Format.eprintf "rvu: router needs --workers N or --connect HOST:PORT@.";
        exit 1
    | None, eps ->
        List.map
          (fun (host, port) ->
            { Rvu_cluster.Router.host; port; spawn = None })
          eps
    | Some n, [] ->
        (* Spawned workers inherit the serve-config flags and the fault
           injection setup; the router itself never fires faults. *)
        List.init n (fun i ->
            let port = worker_base_port + i in
            {
              Rvu_cluster.Router.host = "127.0.0.1";
              port;
              spawn =
                Some
                  (worker_argv ?worker_trace ~index:i config port inject
                     inject_seed);
            })
  in
  Rvu_obs.Runtime.start ();
  let rconfig =
    {
      Rvu_cluster.Router.default_config with
      probe_interval_ms = float_of_int probe_interval_ms;
      restart_backoff_ms = float_of_int restart_backoff_ms;
      route_timeout_ms = float_of_int route_timeout_ms;
      max_request_bytes = config.Rvu_service.Server.max_request_bytes;
      wire;
    }
  in
  let rt = Rvu_cluster.Router.create ~config:rconfig ~endpoints () in
  Fun.protect
    ~finally:(fun () ->
      Rvu_cluster.Router.stop rt;
      Rvu_obs.Runtime.stop ())
  @@ fun () ->
  match tcp_port with
  | Some port -> Rvu_cluster.Router.serve_tcp rt ~host ~port ?connections ()
  | None -> Rvu_cluster.Router.serve_channels rt stdin stdout

let router_cmd =
  let workers =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Spawn $(docv) worker $(b,rvu serve --tcp) processes on \
             consecutive ports from $(b,--worker-base-port) and route over \
             them. The router owns these workers: it restarts any that die \
             and re-admits them once their health probe reports ready.")
  in
  let connect =
    Arg.(
      value & opt_all hostport_conv []
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Route over an externally managed worker (repeatable). The \
             router reconnects with backoff but never spawns or restarts \
             these. Mutually exclusive with $(b,--workers).")
  in
  let worker_base_port =
    Arg.(
      value & opt positive_int 7800
      & info [ "worker-base-port" ] ~docv:"PORT"
          ~doc:"First worker port with $(b,--workers) (worker $(i,i) gets \
                port + $(i,i)).")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Listen on a TCP port instead of serving newline-delimited JSON \
             over stdin/stdout.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (with $(b,--tcp)).")
  in
  let connections =
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Exit after serving this many TCP connections (default: serve \
             forever). Useful for smoke tests.")
  in
  let probe_interval =
    Arg.(
      value & opt positive_int 250
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:
            "Health-probe period per shard. A shard that reports degraded \
             or misses a probe is evicted from the routing ring until a \
             probe reports it ready again.")
  in
  let restart_backoff =
    Arg.(
      value & opt positive_int 500
      & info [ "restart-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Delay before reconnecting to (and, for spawned workers, \
             restarting) a downed shard.")
  in
  let route_timeout =
    Arg.(
      value & opt positive_int 30000
      & info [ "route-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Budget for one shard to answer a routed request before the \
             router re-routes it to a surviving shard (after the retry \
             budget it is shed with an $(i,overloaded) error).")
  in
  let wire =
    wire_arg
      ~doc:
        "Shard-side wire codec: $(i,json) (default) or $(i,binary) \
         (upgrade every worker connection with a $(i,hello) handshake and \
         route length-prefixed frames). Client connections negotiate \
         their own codec per connection regardless; the router transcodes \
         when the two sides differ."
  in
  let worker_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker-trace" ] ~docv:"PREFIX"
          ~doc:
            "With $(b,--workers), give each spawned worker \
             $(b,--trace) $(docv)$(i,i)$(b,.trace) (worker $(i,i)'s own \
             trace file). Combine with the router's $(b,--trace) and \
             $(b,rvu trace-merge) for one cross-process timeline.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Front a cluster of $(b,rvu serve) worker shards: consistent-hash \
          route requests on their canonical cache key, evict and restart \
          unhealthy shards, and serve merged $(i,stats)/$(i,metrics)/\
          $(i,health) aggregates. Speaks exactly the single-server protocol.")
    Term.(
      const router $ config_term $ workers $ connect $ worker_base_port $ tcp
      $ host $ connections $ probe_interval $ restart_backoff $ route_timeout
      $ wire $ trace_arg $ logging_term $ inject_arg $ inject_seed_arg
      $ worker_trace)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify campaign seed cases wire report_path logging =
  with_logging logging @@ fun () ->
  match Rvu_verify.Campaign.of_name campaign with
  | None ->
      Format.eprintf "rvu verify: unknown campaign %S (known: %s)@." campaign
        (String.concat ", " Rvu_verify.Campaign.names);
      exit 2
  | Some run ->
      let report = run ~wire ~seed ~cases () in
      print_string (Rvu_verify.Campaign.summary report);
      (match report_path with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Rvu_service.Wire.print_hum report.Rvu_verify.Campaign.json);
          close_out oc;
          Printf.printf "(report written to %s)\n" path);
      if report.Rvu_verify.Campaign.violations <> [] then exit 1

let verify_cmd =
  let campaign =
    Arg.(
      value & opt string "all"
      & info [ "campaign" ] ~docv:"NAME"
          ~doc:
            "Which campaign to run: $(i,symmetry) (metamorphic oracles \
             through engine, batch and server), $(i,faults) (deterministic \
             fault injection across the service stack), or $(i,all).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed. The case list and every injection decision are \
             a pure function of the seed and case count.")
  in
  let cases =
    Arg.(
      value & opt positive_int 100
      & info [ "cases" ] ~docv:"N" ~doc:"Cases per campaign.")
  in
  let wire =
    wire_arg
      ~doc:
        "Wire codec for every live-server round trip in the campaigns: \
         $(i,json) (default) or $(i,binary) (requests and responses \
         travel the binary frame path; the oracles compared against are \
         unchanged)."
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the full JSON report to $(docv).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run verification campaigns: metamorphic symmetry oracles and \
          deterministic fault injection. Exits non-zero on any invariant \
          violation.")
    Term.(
      const verify $ campaign $ seed $ cases $ wire $ report $ logging_term)

(* ------------------------------------------------------------------ *)
(* health *)

let health connect =
  let host, port = connect in
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  (* The server may still be binding (smoke tests fork it just before the
     probe): retry the connection briefly before giving up. *)
  let rec connect_retry tries =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect sock addr with
    | () -> sock
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close sock;
        if tries <= 1 then begin
          Format.eprintf "rvu: cannot connect to %s:%d: %s@." host port
            (Unix.error_message e);
          exit 1
        end;
        Unix.sleepf 0.1;
        connect_retry (tries - 1)
  in
  let sock = connect_retry 50 in
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  output_string oc "{\"id\":0,\"kind\":\"health\"}\n";
  flush oc;
  let line =
    match input_line ic with
    | line -> line
    | exception End_of_file ->
        Format.eprintf "rvu: server closed the connection without answering@.";
        exit 1
  in
  (try Unix.shutdown sock Unix.SHUTDOWN_ALL with _ -> ());
  close_in_noerr ic;
  let bad reason =
    Format.eprintf "rvu: malformed health response (%s): %s@." reason line;
    exit 1
  in
  let open Rvu_service in
  match Wire.parse line with
  | Error _ -> bad "not JSON"
  | Ok response -> (
      match Wire.member "ok" response with
      | None -> bad "no ok payload"
      | Some payload -> (
          let int_field obj name =
            match Option.bind obj (Wire.member name) with
            | Some (Wire.Int n) -> n
            | _ -> bad (Printf.sprintf "missing %s" name)
          in
          match Wire.member "status" payload with
          | Some (Wire.String status) ->
              let queue = Wire.member "queue" payload in
              Printf.printf
                "%s: %d in flight (depth %d), %d shed since last probe\n"
                status
                (int_field queue "in_flight")
                (int_field queue "depth")
                (int_field (Some payload) "shed_since_last_probe");
              if status = "ready" then exit 0 else exit 2
          | _ -> bad "missing status"))

let health_cmd =
  let connect =
    Arg.(
      required
      & opt (some hostport_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"The $(b,rvu serve --tcp) instance to probe.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe a running server's health endpoint. Exits 0 when ready, 2 \
          when degraded (admission saturated or recent shedding), 1 when \
          the probe itself fails.")
    Term.(const health $ connect)

(* ------------------------------------------------------------------ *)
(* bench-diff *)

(* Numeric leaves of a bench artifact as dotted paths: {"cold":{"wall_s":
   1.2}} becomes ("cold.wall_s", 1.2). List elements get their index as a
   path segment. *)
let rec flatten_numeric prefix v acc =
  let child k v acc =
    flatten_numeric (if prefix = "" then k else prefix ^ "." ^ k) v acc
  in
  match v with
  | Rvu_service.Wire.Obj fields ->
      List.fold_left (fun acc (k, v) -> child k v acc) acc fields
  | Rvu_service.Wire.List items ->
      List.fold_left
        (fun (i, acc) v -> (i + 1, child (string_of_int i) v acc))
        (0, acc) items
      |> snd
  | Rvu_service.Wire.Int n -> (prefix, float_of_int n) :: acc
  | Rvu_service.Wire.Float f -> (prefix, f) :: acc
  | _ -> acc

let contains path needle =
  let n = String.length path and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub path i m = needle || scan (i + 1)) in
  scan 0

let gated_series path =
  (* Compare wall-clock series plus the router's self-metrics: most
     counters and derived ratios move for benign reasons (cache sizes,
     request mixes), but walls are the latency contract and the router
     counters are a reliability one — a retry, shed or stale-epoch count
     rising above its zero baseline is an infinite delta, i.e. an
     automatic regression. *)
  contains path "wall" || contains path "router_"

let bench_diff old_file new_file threshold =
  let load path =
    let contents =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error msg ->
        Format.eprintf "rvu: cannot read %s: %s@." path msg;
        exit 1
    in
    match Rvu_service.Wire.parse contents with
    | Ok v -> v
    | Error e ->
        Format.eprintf "rvu: %s is not valid JSON: %s@." path
          (Rvu_service.Wire.error_to_string e);
        exit 1
  in
  let olds = flatten_numeric "" (load old_file) [] in
  let news = flatten_numeric "" (load new_file) [] in
  let shared =
    List.filter_map
      (fun (path, old_v) ->
        if gated_series path then
          match List.assoc_opt path news with
          | Some new_v -> Some (path, old_v, new_v)
          | None -> None
        else None)
      olds
    |> List.sort compare
  in
  if shared = [] then begin
    Format.eprintf
      "rvu: no shared gated series between %s and %s — nothing to compare@."
      old_file new_file;
    exit 1
  end;
  let regressions = ref 0 in
  List.iter
    (fun (path, old_v, new_v) ->
      let delta_pct =
        if old_v > 0.0 then (new_v -. old_v) /. old_v *. 100.0
        else if new_v > 0.0 then Float.infinity
        else 0.0
      in
      let regressed = delta_pct > threshold in
      if regressed then incr regressions;
      Printf.printf "%-40s %12.6g %12.6g %+8.1f%%%s\n" path old_v new_v
        delta_pct
        (if regressed then "  REGRESSION" else ""))
    shared;
  flush stdout;
  if !regressions > 0 then begin
    Format.eprintf "rvu: %d gated series regressed by more than %g%%@."
      !regressions threshold;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* trace-merge *)

let trace_merge inputs out =
  let inputs =
    List.map
      (fun path ->
        (Filename.remove_extension (Filename.basename path), path))
      inputs
  in
  match Rvu_obs.Trace_merge.merge ~inputs ~out with
  | Error msg ->
      Format.eprintf "rvu trace-merge: %s@." msg;
      exit 1
  | Ok s ->
      Format.printf "merged %d file(s), %d event(s) into %s@."
        s.Rvu_obs.Trace_merge.files s.Rvu_obs.Trace_merge.events out;
      Format.printf "trace ids: %d@." s.Rvu_obs.Trace_merge.trace_ids;
      Format.printf "cross-process trace ids: %d@."
        s.Rvu_obs.Trace_merge.cross_process;
      Format.printf "trace ids spanning 3+ lanes: %d@."
        s.Rvu_obs.Trace_merge.three_lane;
      Format.printf "re-parented serve spans: %d@."
        s.Rvu_obs.Trace_merge.reparented

let trace_merge_cmd =
  let inputs =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Per-process trace files ($(b,--trace)/$(b,--worker-trace) \
             outputs). Conventionally the router's file first; each becomes \
             a process lane named after its basename.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the merged timeline to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Stitch per-process trace files (router + worker shards) into one \
          Perfetto-loadable timeline: named process lanes, GC lanes \
          annotated with the requests they interrupted, and shard serve \
          spans linked under the router forward spans that carried them \
          (matched on the propagated trace context).")
    Term.(const trace_merge $ inputs $ out)

let bench_diff_cmd =
  let file n doc = Arg.(required & pos n (some string) None & info [] ~docv:"FILE" ~doc) in
  let threshold =
    Arg.(
      value & opt float 20.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Fail when any shared gated series is more than $(docv) percent \
             higher in the new artifact.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench JSON artifacts (e.g. bench/baselines/BENCH_4.json \
          against a fresh run) on their shared gated series — wall-time \
          numbers plus the router's self-metric counters — and exit non-zero \
          on a regression beyond the threshold.")
    Term.(
      const bench_diff
      $ file 0 "Baseline bench artifact."
      $ file 1 "Fresh bench artifact."
      $ threshold)

(* ------------------------------------------------------------------ *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "rvu" ~version:"1.0.0"
             ~doc:
               "Rendezvous by robots with unknown attributes (PODC 2019) - \
                simulator and analytic bounds.")
          [
            simulate_cmd; search_cmd; feasibility_cmd; schedule_cmd; bound_cmd;
            sweep_cmd; gather_cmd; serve_cmd; router_cmd; loadgen_cmd;
            verify_cmd; health_cmd; bench_diff_cmd; trace_merge_cmd;
          ]))
